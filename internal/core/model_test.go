package core_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/obj"
)

// Model-based property tests: each core data structure is driven by a
// random operation sequence and compared against a plain Go model,
// with collections of random generations injected between operations.
// The structures must behave identically to their models no matter
// when or how deeply the collector runs.

func TestPropertyTconcMatchesQueueModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := heap.NewDefault()
		tc := h.NewRoot(core.NewTconc(h))
		var model []int64
		next := int64(0)
		for op := 0; op < 300; op++ {
			switch rng.Intn(4) {
			case 0, 1: // enqueue
				core.TconcPut(h, tc.Get(), obj.FromFixnum(next))
				model = append(model, next)
				next++
			case 2: // dequeue
				v, ok := core.TconcGet(h, tc.Get())
				if len(model) == 0 {
					if ok {
						t.Errorf("seed %d: dequeue from empty returned %v", seed, v)
						return false
					}
				} else {
					if !ok || v.FixnumValue() != model[0] {
						t.Errorf("seed %d: dequeue got %v ok=%v want %d", seed, v, ok, model[0])
						return false
					}
					model = model[1:]
				}
			case 3: // collect a random generation
				h.Collect(rng.Intn(4))
				if errs := h.Verify(); len(errs) > 0 {
					t.Errorf("seed %d: heap unsound: %v", seed, errs[0])
					return false
				}
			}
			if got := core.TconcLength(h, tc.Get()); got != len(model) {
				t.Errorf("seed %d: length %d, model %d", seed, got, len(model))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyGuardedTableMatchesMapModel(t *testing.T) {
	hash := func(h *heap.Heap, key obj.Value) uint64 {
		return uint64(h.Car(key).FixnumValue())
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := heap.NewDefault()
		tbl := core.NewGuardedTable(h, 16, hash)
		// Live keys (rooted) with their model values; dropped count.
		type entry struct {
			root *heap.Root
			val  int64
		}
		live := map[int64]*entry{}
		nextKey := int64(0)
		dropped := 0
		for op := 0; op < 200; op++ {
			switch rng.Intn(5) {
			case 0, 1: // insert a fresh key
				k := h.Cons(obj.FromFixnum(nextKey), obj.Nil)
				e := &entry{root: h.NewRoot(k), val: nextKey * 10}
				got := tbl.Access(k, obj.FromFixnum(e.val))
				if got.FixnumValue() != e.val {
					t.Errorf("seed %d: insert returned %v", seed, got)
					return false
				}
				live[nextKey] = e
				nextKey++
			case 2: // re-access an existing key: must return original value
				if len(live) > 0 {
					for id, e := range live {
						got := tbl.Access(e.root.Get(), obj.FromFixnum(-1))
						if got.FixnumValue() != e.val {
							t.Errorf("seed %d: key %d returned %v want %d",
								seed, id, got, e.val)
							return false
						}
						break
					}
				}
			case 3: // drop a key
				for id, e := range live {
					e.root.Release()
					delete(live, id)
					dropped++
					break
				}
			case 4:
				h.Collect(rng.Intn(4))
			}
		}
		// Settle: full collections then cleanup via Len.
		h.Collect(h.MaxGeneration())
		h.Collect(h.MaxGeneration())
		if got := tbl.Len(); got != len(live) {
			t.Errorf("seed %d: Len=%d model=%d (dropped %d)", seed, got, len(live), dropped)
			return false
		}
		for id, e := range live {
			v, ok := tbl.Lookup(e.root.Get())
			if !ok || v.FixnumValue() != e.val {
				t.Errorf("seed %d: surviving key %d lost", seed, id)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyEqTableMatchesMapModel(t *testing.T) {
	for _, mode := range []core.RehashMode{core.RehashAll, core.RehashTransport} {
		mode := mode
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			h := heap.NewDefault()
			tbl := core.NewEqTable(h, 8, mode)
			type entry struct {
				root *heap.Root
				val  int64
			}
			var entries []*entry
			for op := 0; op < 200; op++ {
				switch rng.Intn(6) {
				case 0, 1: // insert
					k := h.Cons(obj.FromFixnum(int64(len(entries))), obj.Nil)
					e := &entry{root: h.NewRoot(k), val: rng.Int63n(1000)}
					tbl.Put(k, obj.FromFixnum(e.val))
					entries = append(entries, e)
				case 2: // update
					if len(entries) > 0 {
						e := entries[rng.Intn(len(entries))]
						if e.root != nil {
							e.val = rng.Int63n(1000)
							tbl.Put(e.root.Get(), obj.FromFixnum(e.val))
						}
					}
				case 3: // delete
					if len(entries) > 0 {
						e := entries[rng.Intn(len(entries))]
						if e.root != nil {
							if !tbl.Delete(e.root.Get()) {
								t.Errorf("seed %d: delete of present key failed", seed)
								return false
							}
							e.root.Release()
							e.root = nil
						}
					}
				case 4: // lookup everything
					for i, e := range entries {
						if e.root == nil {
							continue
						}
						v, ok := tbl.Get(e.root.Get())
						if !ok || v.FixnumValue() != e.val {
							t.Errorf("seed %d mode %v: key %d wrong (%v,%v)",
								seed, mode, i, v, ok)
							return false
						}
					}
				case 5:
					h.Collect(rng.Intn(4))
				}
			}
			liveCount := 0
			for _, e := range entries {
				if e.root != nil {
					liveCount++
				}
			}
			if tbl.Len() != liveCount {
				t.Errorf("seed %d mode %v: Len=%d want %d", seed, mode, tbl.Len(), liveCount)
				return false
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
	}
}

func TestPropertyGuardianDeliversEveryDrop(t *testing.T) {
	// Every registered-then-dropped object is delivered exactly once;
	// every registered-and-held object is never delivered.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := heap.NewDefault()
		g := core.NewGuardian(h)
		held := map[int64]*heap.Root{}
		expect := map[int64]int{} // id -> expected deliveries
		next := int64(0)
		for op := 0; op < 150; op++ {
			switch rng.Intn(4) {
			case 0, 1: // register a fresh object, maybe keep it
				p := h.Cons(obj.FromFixnum(next), obj.Nil)
				g.Register(p)
				if rng.Intn(2) == 0 {
					held[next] = h.NewRoot(p)
				} else {
					expect[next]++
				}
				next++
			case 2: // drop a held object
				for id, r := range held {
					r.Release()
					delete(held, id)
					expect[id]++
					break
				}
			case 3:
				h.Collect(rng.Intn(4))
			}
		}
		// Settle everything.
		for i := 0; i < 3; i++ {
			h.Collect(h.MaxGeneration())
		}
		got := map[int64]int{}
		for {
			v, ok := g.Get()
			if !ok {
				break
			}
			got[h.Car(v).FixnumValue()]++
		}
		for id, want := range expect {
			if got[id] != want {
				t.Errorf("seed %d: object %d delivered %d times, want %d",
					seed, id, got[id], want)
				return false
			}
		}
		for id := range got {
			if expect[id] == 0 {
				t.Errorf("seed %d: held object %d was delivered", seed, id)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/obj"
)

func fix(n int64) obj.Value { return obj.FromFixnum(n) }

func TestGuardianPaperTranscript(t *testing.T) {
	// > (define G (make-guardian))
	// > (define x (cons 'a 'b))
	// > (G x)
	// > (G)        => #f
	// > (set! x #f)
	// > (G)        => (a . b)   [after collection]
	// > (G)        => #f
	h := heap.NewDefault()
	g := core.NewGuardian(h)
	x := h.NewRoot(h.Cons(fix('a'), fix('b')))
	g.Register(x.Get())
	if _, ok := g.Get(); ok {
		t.Fatal("guardian returned an object while it is still accessible")
	}
	h.Collect(0)
	if _, ok := g.Get(); ok {
		t.Fatal("guardian returned an accessible object after collection")
	}
	x.Release()
	h.Collect(1) // x was promoted to generation 1 by the first collection
	got, ok := g.Get()
	if !ok {
		t.Fatal("guardian did not return the dropped object")
	}
	if h.Car(got).FixnumValue() != 'a' || h.Cdr(got).FixnumValue() != 'b' {
		t.Fatal("returned object corrupted")
	}
	if _, ok := g.Get(); ok {
		t.Fatal("guardian should be empty after retrieval")
	}
}

func TestGuardianDoubleRegistrationTranscript(t *testing.T) {
	// (G x) (G x) → retrievable twice.
	h := heap.NewDefault()
	g := core.NewGuardian(h)
	x := h.NewRoot(h.Cons(fix(1), fix(2)))
	g.Register(x.Get())
	g.Register(x.Get())
	x.Release()
	h.Collect(0)
	a, ok1 := g.Get()
	b, ok2 := g.Get()
	if !ok1 || !ok2 || a != b {
		t.Fatal("double registration must yield the same object twice")
	}
	if _, ok := g.Get(); ok {
		t.Fatal("third retrieval should fail")
	}
}

func TestGuardianTwoGuardiansTranscript(t *testing.T) {
	h := heap.NewDefault()
	g := core.NewGuardian(h)
	g2 := core.NewGuardian(h)
	x := h.NewRoot(h.Cons(fix(1), fix(2)))
	g.Register(x.Get())
	g2.Register(x.Get())
	x.Release()
	h.Collect(0)
	a, ok1 := g.Get()
	b, ok2 := g2.Get()
	if !ok1 || !ok2 || a != b {
		t.Fatal("object must be retrievable from both guardians")
	}
}

func TestGuardianRegisteredWithGuardianTranscript(t *testing.T) {
	// (G H) (H x); drop H and x; ((G)) should eventually yield x.
	h := heap.NewDefault()
	g := core.NewGuardian(h)
	hg := core.NewGuardian(h)
	x := h.NewRoot(h.Cons(fix('a'), fix('b')))
	g.Register(hg.Tconc())
	hg.Register(x.Get())
	x.Release()
	hg.Release()
	h.Collect(0)
	tc, ok := g.Get()
	if !ok {
		t.Fatal("G did not return H")
	}
	inner, ok := core.TconcGet(h, tc)
	if !ok {
		t.Fatal("H did not contain x")
	}
	if h.Car(inner).FixnumValue() != 'a' {
		t.Fatal("x corrupted")
	}
}

func TestGuardianReleaseCancelsFinalization(t *testing.T) {
	h := heap.NewDefault()
	g := core.NewGuardian(h)
	g.Register(h.Cons(fix(1), obj.Nil))
	g.Release()
	h.Collect(0)
	if h.Stats.GuardianEntriesSalvaged != 0 {
		t.Fatal("released guardian must not salvage anything")
	}
	if h.ProtectedCount() != 0 {
		t.Fatal("entries of released guardian must be discarded")
	}
}

func TestGuardianResurrectionAndReregistration(t *testing.T) {
	// A retrieved object has no special status: it can be let loose
	// into the system again or re-registered for finalization (§1/§3).
	h := heap.NewDefault()
	g := core.NewGuardian(h)
	g.Register(h.Cons(fix(5), obj.Nil))
	h.Collect(0)
	got, ok := g.Get()
	if !ok {
		t.Fatal("object not salvaged")
	}
	// Resurrect: root it, collect, check it stays alive.
	r := h.NewRoot(got)
	h.Collect(h.MaxGeneration())
	if h.Car(r.Get()).FixnumValue() != 5 {
		t.Fatal("resurrected object lost")
	}
	// Re-register and drop again.
	g.Register(r.Get())
	r.Release()
	h.Collect(h.MaxGeneration())
	if got2, ok := g.Get(); !ok || h.Car(got2).FixnumValue() != 5 {
		t.Fatal("re-registered object not salvaged a second time")
	}
}

func TestGuardianImmediateNeverReturned(t *testing.T) {
	h := heap.NewDefault()
	g := core.NewGuardian(h)
	g.Register(fix(42))
	for i := 0; i < 3; i++ {
		h.Collect(h.MaxGeneration())
	}
	if _, ok := g.Get(); ok {
		t.Fatal("immediates are always accessible; must never be returned")
	}
}

func TestGuardianPendingCount(t *testing.T) {
	h := heap.NewDefault()
	g := core.NewGuardian(h)
	for i := 0; i < 5; i++ {
		g.Register(h.Cons(fix(int64(i)), obj.Nil))
	}
	h.Collect(0)
	if n := g.Pending(); n != 5 {
		t.Fatalf("Pending = %d, want 5", n)
	}
	g.Get()
	if n := g.Pending(); n != 4 {
		t.Fatalf("Pending = %d after one Get, want 4", n)
	}
}

func TestTconcFIFOOrder(t *testing.T) {
	h := heap.NewDefault()
	tc := h.NewRoot(core.NewTconc(h))
	for i := int64(0); i < 10; i++ {
		core.TconcPut(h, tc.Get(), fix(i))
	}
	for i := int64(0); i < 10; i++ {
		v, ok := core.TconcGet(h, tc.Get())
		if !ok || v.FixnumValue() != i {
			t.Fatalf("dequeue %d: got %v ok=%v", i, v, ok)
		}
	}
	if !core.TconcEmpty(h, tc.Get()) {
		t.Fatal("tconc should be empty")
	}
}

func TestTconcSurvivesCollections(t *testing.T) {
	h := heap.NewDefault()
	tc := h.NewRoot(core.NewTconc(h))
	for i := int64(0); i < 100; i++ {
		core.TconcPut(h, tc.Get(), fix(i))
		if i%10 == 0 {
			h.Collect(int(i/10) % 4)
		}
	}
	for i := int64(0); i < 100; i++ {
		v, ok := core.TconcGet(h, tc.Get())
		if !ok || v.FixnumValue() != i {
			t.Fatalf("dequeue %d after collections: got %v ok=%v", i, v, ok)
		}
	}
}

// TestTconcInterleavings exhaustively interleaves the collector-side
// append (Figure 3) with a step-decomposed mutator dequeue (Figure 4),
// checking that every interleaving preserves queue integrity — the
// paper's claim that neither side needs a critical section. The
// mutator's dequeue is split at each of its reads/writes; an append is
// injected at every split point.
func TestTconcInterleavings(t *testing.T) {
	// Steps of the mutator protocol, operating on captured state.
	type state struct {
		x, y obj.Value
	}
	steps := []func(h *heap.Heap, tc obj.Value, s *state){
		func(h *heap.Heap, tc obj.Value, s *state) { s.x = h.Car(tc) },
		func(h *heap.Heap, tc obj.Value, s *state) { s.y = h.Car(s.x) },
		func(h *heap.Heap, tc obj.Value, s *state) { h.SetCar(tc, h.Cdr(s.x)) },
		func(h *heap.Heap, tc obj.Value, s *state) { h.SetCar(s.x, obj.False) },
		func(h *heap.Heap, tc obj.Value, s *state) { h.SetCdr(s.x, obj.False) },
	}
	for inject := 0; inject <= len(steps); inject++ {
		h := heap.NewDefault()
		tc := core.NewTconc(h)
		core.TconcPut(h, tc, fix(100)) // ensure non-empty before dequeue
		var s state
		var got []int64
		for i := 0; i <= len(steps); i++ {
			if i == inject {
				// "Collector" appends mid-dequeue.
				core.TconcPut(h, tc, fix(200))
			}
			if i < len(steps) {
				steps[i](h, tc, &s)
			}
		}
		got = append(got, s.y.FixnumValue())
		for {
			v, ok := core.TconcGet(h, tc)
			if !ok {
				break
			}
			got = append(got, v.FixnumValue())
		}
		if len(got) != 2 || got[0] != 100 || got[1] != 200 {
			t.Fatalf("inject@%d: got %v, want [100 200]", inject, got)
		}
	}
}

// TestTconcAppendVisibility checks the key ordering property of Figure
// 3: until the header's cdr is updated (the final step), the mutator
// sees the queue unchanged.
func TestTconcAppendVisibility(t *testing.T) {
	h := heap.NewDefault()
	tc := core.NewTconc(h)
	if !core.TconcEmpty(h, tc) {
		t.Fatal("fresh tconc not empty")
	}
	// Perform the first two writes of the append protocol by hand.
	last := h.Cdr(tc)
	newLast := h.Cons(obj.False, obj.False)
	h.SetCar(last, fix(7))
	h.SetCdr(last, newLast)
	// The element is not yet visible: header cdr not updated.
	if !core.TconcEmpty(h, tc) {
		t.Fatal("partially appended element became visible")
	}
	h.SetCdr(tc, newLast) // final update
	v, ok := core.TconcGet(h, tc)
	if !ok || v.FixnumValue() != 7 {
		t.Fatal("element not visible after final update")
	}
}

func TestTransportGuardianReportsMoves(t *testing.T) {
	h := heap.NewDefault()
	tg := core.NewTransportGuardian(h)
	x := h.NewRoot(h.Cons(fix(1), obj.Nil))
	tg.Register(x.Get())
	h.Collect(0) // x moves to generation 1; marker was collected
	moved, ok := tg.Next()
	if !ok {
		t.Fatal("transport guardian missed a moved object")
	}
	if moved != x.Get() {
		t.Fatal("transport guardian returned wrong object")
	}
	if _, ok := tg.Next(); ok {
		t.Fatal("no further moves expected")
	}
}

func TestTransportGuardianAgesWithObject(t *testing.T) {
	// After the marker has aged alongside a tenured object, young
	// collections stop reporting the object — the generation-friendly
	// behaviour the paper designs for.
	h := heap.NewDefault()
	tg := core.NewTransportGuardian(h)
	x := h.NewRoot(h.Cons(fix(1), obj.Nil))
	tg.Register(x.Get())
	h.Collect(0)
	if _, ok := tg.Next(); !ok { // drain and re-register (marker -> gen 1)
		t.Fatal("expected a move report")
	}
	h.Collect(0) // x (gen 1) does not move; marker (gen 1) not collected
	if _, ok := tg.Next(); ok {
		t.Fatal("young collection must not report a tenured, unmoved object")
	}
	h.Collect(1) // now x moves to gen 2
	if _, ok := tg.Next(); !ok {
		t.Fatal("old-generation collection should report the move")
	}
}

func TestTransportGuardianDropsDeadObjects(t *testing.T) {
	h := heap.NewDefault()
	tg := core.NewTransportGuardian(h)
	tg.Register(h.Cons(fix(1), obj.Nil)) // immediately dropped
	h.Collect(0)
	if _, ok := tg.Next(); ok {
		t.Fatal("transport guardian must not hold dead objects alive")
	}
}

func fixnumCarHash(h *heap.Heap, key obj.Value) uint64 {
	return uint64(h.Car(key).FixnumValue())
}

func TestGuardedTableBasics(t *testing.T) {
	h := heap.NewDefault()
	tbl := core.NewGuardedTable(h, 8, fixnumCarHash)
	k := h.NewRoot(h.Cons(fix(3), obj.Nil))
	got := tbl.Access(k.Get(), fix(30))
	if got.FixnumValue() != 30 {
		t.Fatal("insert should return the provided value")
	}
	got = tbl.Access(k.Get(), fix(99))
	if got.FixnumValue() != 30 {
		t.Fatal("existing key must return existing value (Figure 1)")
	}
	if v, ok := tbl.Lookup(k.Get()); !ok || v.FixnumValue() != 30 {
		t.Fatal("lookup wrong")
	}
	if tbl.Len() != 1 {
		t.Fatal("length wrong")
	}
}

func TestGuardedTableRemovesDroppedKeys(t *testing.T) {
	h := heap.NewDefault()
	tbl := core.NewGuardedTable(h, 16, fixnumCarHash)
	keep := make([]*heap.Root, 0)
	for i := int64(0); i < 40; i++ {
		k := h.Cons(fix(i), obj.Nil)
		if i%2 == 0 {
			keep = append(keep, h.NewRoot(k))
		}
		tbl.Access(k, fix(i*10))
	}
	if tbl.Len() != 40 {
		t.Fatalf("Len = %d before collection, want 40", tbl.Len())
	}
	h.Collect(0)
	h.Collect(1)
	if got := tbl.Len(); got != 20 {
		t.Fatalf("Len = %d after dropping half the keys, want 20", got)
	}
	// Kept keys still resolve.
	for i, r := range keep {
		v, ok := tbl.Lookup(r.Get())
		if !ok || v.FixnumValue() != int64(i*2*10) {
			t.Fatalf("kept key %d lost or wrong: %v %v", i, v, ok)
		}
	}
	if tbl.Removed != 20 {
		t.Fatalf("Removed = %d, want 20", tbl.Removed)
	}
}

func TestGuardedTableDoesNotRetainKeys(t *testing.T) {
	// The weak entry plus guardian must not keep a dropped key's
	// storage alive after cleanup runs.
	h := heap.NewDefault()
	tbl := core.NewGuardedTable(h, 8, fixnumCarHash)
	tbl.Access(h.Cons(fix(1), obj.Nil), fix(10))
	h.Collect(0)
	if tbl.Len() != 0 {
		t.Fatal("dropped key not removed")
	}
	h.Stats.Reset()
	h.Collect(1)
	if h.Stats.GuardianEntriesSalvaged != 0 {
		t.Fatal("stale guardian entries remain after cleanup")
	}
}

func TestUnguardedTableRetainsEverything(t *testing.T) {
	h := heap.NewDefault()
	tbl := core.NewUnguardedTable(h, 16, fixnumCarHash)
	for i := int64(0); i < 40; i++ {
		tbl.Access(h.Cons(fix(i), obj.Nil), fix(i))
	}
	h.Collect(0)
	h.Collect(1)
	if tbl.Len() != 40 {
		t.Fatalf("unguarded table should keep all %d entries, has %d", 40, tbl.Len())
	}
}

func TestEqTableModes(t *testing.T) {
	for _, mode := range []core.RehashMode{core.RehashAll, core.RehashTransport} {
		h := heap.NewDefault()
		tbl := core.NewEqTable(h, 32, mode)
		var keys []*heap.Root
		for i := int64(0); i < 50; i++ {
			k := h.NewRoot(h.Cons(fix(i), obj.Nil))
			keys = append(keys, k)
			tbl.Put(k.Get(), fix(i*2))
		}
		// Collections move the keys; lookups must keep working.
		h.Collect(0)
		for i, k := range keys {
			v, ok := tbl.Get(k.Get())
			if !ok || v.FixnumValue() != int64(i*2) {
				t.Fatalf("mode %v: key %d lost after collection", mode, i)
			}
		}
		h.Collect(1)
		h.Collect(2)
		for i, k := range keys {
			if v, ok := tbl.Get(k.Get()); !ok || v.FixnumValue() != int64(i*2) {
				t.Fatalf("mode %v: key %d lost after deep collections", mode, i)
			}
		}
		// Update and delete.
		tbl.Put(keys[0].Get(), fix(999))
		if v, _ := tbl.Get(keys[0].Get()); v.FixnumValue() != 999 {
			t.Fatalf("mode %v: update failed", mode)
		}
		if !tbl.Delete(keys[1].Get()) {
			t.Fatalf("mode %v: delete failed", mode)
		}
		if _, ok := tbl.Get(keys[1].Get()); ok {
			t.Fatalf("mode %v: deleted key still present", mode)
		}
		if tbl.Len() != 49 {
			t.Fatalf("mode %v: Len = %d, want 49", mode, tbl.Len())
		}
	}
}

func TestEqTableTransportRehashesLessForTenuredKeys(t *testing.T) {
	// E4's core claim at the counter level: with tenured keys, young
	// collections cause zero transport-mode rehashing but full
	// rehash-all work.
	run := func(mode core.RehashMode) uint64 {
		h := heap.NewDefault()
		tbl := core.NewEqTable(h, 64, mode)
		var keys []*heap.Root
		for i := int64(0); i < 100; i++ {
			k := h.NewRoot(h.Cons(fix(i), obj.Nil))
			keys = append(keys, k)
			tbl.Put(k.Get(), fix(i))
		}
		// Tenure keys (and markers) to generation 3.
		for i := 0; i < 4; i++ {
			h.Collect(h.MaxGeneration())
			tbl.Get(keys[0].Get()) // drain/fix after each collection
		}
		tbl.KeysRehashed = 0
		// Young collections: keys do not move.
		for i := 0; i < 10; i++ {
			h.Collect(0)
			tbl.Get(keys[0].Get())
		}
		return tbl.KeysRehashed
	}
	naive := run(core.RehashAll)
	transport := run(core.RehashTransport)
	if transport != 0 {
		t.Fatalf("transport mode rehashed %d keys at young collections, want 0", transport)
	}
	if naive != 100*10 {
		t.Fatalf("rehash-all mode rehashed %d keys, want 1000", naive)
	}
}

func TestGuardedTableGrowth(t *testing.T) {
	h := heap.NewDefault()
	tbl := core.NewGuardedTable(h, 2, fixnumCarHash) // tiny: forces many doublings
	const K = 2000
	keys := make([]*heap.Root, K)
	for i := int64(0); i < K; i++ {
		k := h.Cons(fix(i), obj.Nil)
		keys[i] = h.NewRoot(k)
		tbl.Access(k, fix(i*3))
	}
	if tbl.Len() != K {
		t.Fatalf("Len = %d, want %d", tbl.Len(), K)
	}
	for i := int64(0); i < K; i++ {
		v, ok := tbl.Lookup(keys[i].Get())
		if !ok || v.FixnumValue() != i*3 {
			t.Fatalf("key %d lost after growth", i)
		}
	}
	// Growth must not disturb guardian-driven cleanup.
	for i := 0; i < K/2; i++ {
		keys[i].Release()
	}
	h.Collect(0)
	h.Collect(1)
	if got := tbl.Len(); got != K/2 {
		t.Fatalf("Len after drop = %d, want %d", got, K/2)
	}
	for i := int64(K / 2); i < K; i++ {
		if _, ok := tbl.Lookup(keys[i].Get()); !ok {
			t.Fatalf("surviving key %d lost after cleanup in grown table", i)
		}
	}
	h.MustVerify()
}

func TestGuardedTableGrowthUnderCollections(t *testing.T) {
	h := heap.NewDefault()
	tbl := core.NewGuardedTable(h, 2, fixnumCarHash)
	var keys []*heap.Root
	for i := int64(0); i < 500; i++ {
		k := h.Cons(fix(i), obj.Nil)
		keys = append(keys, h.NewRoot(k))
		tbl.Access(k, fix(i))
		if i%50 == 49 {
			h.Collect(int(i/50) % 4)
		}
	}
	for i, r := range keys {
		if v, ok := tbl.Lookup(r.Get()); !ok || v.FixnumValue() != int64(i) {
			t.Fatalf("key %d lost", i)
		}
	}
	h.MustVerify()
}

func TestGuardedTableForEach(t *testing.T) {
	h := heap.NewDefault()
	tbl := core.NewGuardedTable(h, 8, fixnumCarHash)
	var keys []*heap.Root
	for i := int64(0); i < 10; i++ {
		k := h.Cons(fix(i), obj.Nil)
		keys = append(keys, h.NewRoot(k))
		tbl.Access(k, fix(i*2))
	}
	sum := int64(0)
	tbl.ForEach(func(k, v obj.Value) { sum += v.FixnumValue() })
	if sum != 90 {
		t.Fatalf("ForEach sum = %d, want 90", sum)
	}
	for i := 0; i < 5; i++ {
		keys[i].Release()
	}
	h.Collect(h.MaxGeneration())
	count := 0
	tbl.ForEach(func(k, v obj.Value) { count++ })
	if count != 5 {
		t.Fatalf("ForEach visited %d entries after drop, want 5", count)
	}
}

func TestGuardedTableKeyInValueLimitation(t *testing.T) {
	// The classic limitation that ephemerons (introduced after this
	// paper) solve: when a table VALUE references its own KEY, the key
	// is reachable through the table itself — table -> bucket -> entry
	// cdr (strong) -> key — so the collector can never prove it
	// inaccessible and the entry is retained even with no outside
	// references. Figure 1's guarded table shares this behaviour with
	// every weak-key table of its era; this test documents it.
	h := heap.NewDefault()
	tbl := core.NewGuardedTable(h, 8, fixnumCarHash)
	key := h.Cons(fix(1), obj.Nil)
	value := h.Cons(fix(100), key) // value -> key cycle through the table
	tbl.Access(key, value)
	// No outside references to key or value remain.
	key, value = obj.False, obj.False
	h.Collect(h.MaxGeneration())
	h.Collect(h.MaxGeneration())
	if got := tbl.Len(); got != 1 {
		t.Fatalf("key-in-value entry count = %d; the documented retention behaviour changed", got)
	}
	// A plain (non-self-referential) entry in the same table does get
	// reclaimed, confirming the retention above is the key-in-value
	// case specifically.
	tbl.Access(h.Cons(fix(2), obj.Nil), fix(0))
	h.Collect(h.MaxGeneration())
	h.Collect(h.MaxGeneration())
	if got := tbl.Len(); got != 1 {
		t.Fatalf("plain entry not reclaimed: %d", got)
	}
}

package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/obj"
)

func TestNotifierDeliversObjectIntact(t *testing.T) {
	h := heap.NewDefault()
	n := core.NewNotifier(h)
	n.OnReclaim(h.Cons(fix(7), fix(8)), func(v obj.Value) {
		if h.Car(v).FixnumValue() != 7 || h.Cdr(v).FixnumValue() != 8 {
			t.Error("callback received corrupted object")
		}
		// Ordinary code: allocation is fine.
		h.Cons(v, obj.Nil)
	})
	h.Collect(0)
	if got := n.Drain(); got != 1 {
		t.Fatalf("Drain = %d, want 1", got)
	}
	if n.Pending() != 0 {
		t.Fatal("registration not consumed")
	}
}

func TestNotifierLiveObjectNotDelivered(t *testing.T) {
	h := heap.NewDefault()
	n := core.NewNotifier(h)
	keep := h.NewRoot(h.Cons(fix(1), obj.Nil))
	released := false
	n.OnReclaim(keep.Get(), func(obj.Value) {
		if !released {
			t.Error("live object delivered")
		}
	})
	for i := 0; i < 3; i++ {
		h.Collect(h.MaxGeneration())
		n.Drain()
	}
	if n.Pending() != 1 {
		t.Fatal("registration lost while object alive")
	}
	released = true
	keep.Release()
	h.Collect(h.MaxGeneration())
	if n.Drain() != 1 {
		t.Fatal("dropped object not delivered")
	}
}

func TestNotifierCancel(t *testing.T) {
	h := heap.NewDefault()
	n := core.NewNotifier(h)
	id := n.OnReclaim(h.Cons(fix(1), obj.Nil), func(obj.Value) {
		t.Error("canceled callback ran")
	})
	if !n.Cancel(id) {
		t.Fatal("cancel of pending registration failed")
	}
	if n.Cancel(id) {
		t.Fatal("double cancel reported success")
	}
	h.Collect(0)
	if n.Drain() != 0 {
		t.Fatal("canceled registration delivered")
	}
}

func TestNotifierResurrectAndRearm(t *testing.T) {
	h := heap.NewDefault()
	n := core.NewNotifier(h)
	deliveries := 0
	var rearm func(v obj.Value)
	rearm = func(v obj.Value) {
		deliveries++
		if deliveries < 3 {
			n.OnReclaim(v, rearm) // re-register the same object
		}
	}
	n.OnReclaim(h.Cons(fix(5), obj.Nil), rearm)
	for i := 0; i < 5; i++ {
		h.Collect(h.MaxGeneration())
		n.Drain()
	}
	if deliveries != 3 {
		t.Fatalf("deliveries = %d, want 3 (re-armed twice)", deliveries)
	}
}

func TestNotifierManyRegistrations(t *testing.T) {
	h := heap.NewDefault()
	n := core.NewNotifier(h)
	seen := map[int64]bool{}
	for i := int64(0); i < 500; i++ {
		i := i
		n.OnReclaim(h.Cons(fix(i), obj.Nil), func(v obj.Value) {
			if seen[i] {
				t.Errorf("object %d delivered twice", i)
			}
			seen[i] = true
		})
	}
	h.Collect(0)
	if got := n.Drain(); got != 500 {
		t.Fatalf("Drain = %d, want 500", got)
	}
	if len(seen) != 500 {
		t.Fatalf("saw %d distinct objects", len(seen))
	}
}

func TestHeapOutOfMemoryLimit(t *testing.T) {
	cfg := heap.DefaultConfig()
	cfg.MaxSegments = 8
	h := heap.MustNew(cfg)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("exceeding MaxSegments did not panic")
		}
	}()
	r := h.NewRoot(obj.Nil)
	for i := 0; ; i++ {
		r.Set(h.Cons(fix(int64(i)), r.Get())) // all live: no collection can help
	}
}

// Gcbench: a classic garbage-collection workload (binary trees in the
// style of Boehm's GCBench) run through the embedded Scheme
// interpreter, with a guardian watching the long-lived trees. It
// exercises the whole reproduction at once: the generational
// collector under sustained allocation, automatic radix-policy
// collections, promotion, and guardian recovery of dropped trees —
// then prints the collector's own accounting.
//
//	go run ./examples/gcbench
package main

import (
	"fmt"
	"time"

	"repro/internal/heap"
	"repro/internal/scheme"
)

const program = `
(define (make-tree d)
  (if (zero? d)
      (cons '() '())
      (cons (make-tree (- d 1)) (make-tree (- d 1)))))

(define (tree-count t)
  (if (null? t) 0 (+ 1 (tree-count (car t)) (tree-count (cdr t)))))

(define G (make-guardian))
(define recovered 0)

;; Short-lived trees: build, verify, drop.
(define (churn depth n)
  (let loop ([i 0])
    (when (< i n)
      (let ([t (make-tree depth)])
        (G t)
        (unless (= (tree-count t) (- (* 2 (expt2 depth)) 1))
          (error "tree corrupted")))
      (loop (+ i 1)))))

(define (expt2 n) (if (zero? n) 1 (* 2 (expt2 (- n 1)))))

;; A long-lived tree survives the whole run.
(define long-lived (make-tree 10))

(churn 4 300)
(churn 6 100)
(churn 8 30)

;; Recover everything the collector proved dead.
(collect 3)
(let drain ([x (G)])
  (when x
    (set! recovered (+ recovered 1))
    (drain (G))))

(list (tree-count long-lived) recovered)
`

func main() {
	cfg := heap.DefaultConfig()
	cfg.Policy = heap.RadixPolicy{Trigger: 32 * 1024}
	h := heap.MustNew(cfg)
	m := scheme.New(h, nil)

	fmt.Println("GCBench-style binary-tree workload on the simulated heap")
	start := time.Now()
	v, err := m.EvalString(program)
	if err != nil {
		panic(err)
	}
	elapsed := time.Since(start)

	longLived := h.Car(v).FixnumValue()
	recovered := h.Car(h.Cdr(v)).FixnumValue()
	fmt.Printf("long-lived tree nodes: %d (expected %d)\n", longLived, 1<<11-1)
	fmt.Printf("dropped trees recovered via guardian: %d of 430\n", recovered)
	fmt.Printf("wall time: %v\n\n", elapsed.Round(time.Millisecond))
	fmt.Println(h.Stats.String())
	if errs := h.Verify(); len(errs) != 0 {
		panic(fmt.Sprintf("heap unsound after workload: %v", errs[0]))
	}
	fmt.Println("\nheap verified sound after the workload")
}

// Hashtable: Figure 1's guarded hash table, used as the paper
// suggests — attaching values to keys without keeping the keys alive,
// as in symbol tables or shared-structure detection during printing.
// This example runs the workload twice, guarded and unguarded, and
// shows the entry counts and heap residency diverge.
//
//	go run ./examples/hashtable
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/obj"
)

// carHash hashes a key by the fixnum in its car — stable across
// collections, as Figure 1's user-supplied hash procedure must be.
func carHash(h *heap.Heap, key obj.Value) uint64 {
	return uint64(h.Car(key).FixnumValue())
}

func main() {
	const keys = 5000
	fmt.Println("guarded hash table (Figure 1) vs unguarded")
	fmt.Println()

	{
		h := heap.NewDefault()
		tbl := core.NewGuardedTable(h, 512, carHash)
		live := attachAndDrop(h, func(k, v obj.Value) { tbl.Access(k, v) }, keys)
		h.Collect(h.MaxGeneration())
		entries := tbl.Len() // access runs the guardian-driven cleanup
		h.Collect(h.MaxGeneration())
		fmt.Printf("guarded:   %d entries remain (dropped keys removed), %6d heap words live\n",
			entries, h.LiveWords())
		// The kept keys still resolve.
		for _, r := range live {
			if _, ok := tbl.Lookup(r.Get()); !ok {
				panic("live key lost")
			}
		}
	}
	{
		h := heap.NewDefault()
		tbl := core.NewUnguardedTable(h, 512, carHash)
		_ = attachAndDrop(h, func(k, v obj.Value) { tbl.Access(k, v) }, keys)
		h.Collect(h.MaxGeneration())
		h.Collect(h.MaxGeneration())
		fmt.Printf("unguarded: %d entries remain (everything retained),  %6d heap words live\n",
			tbl.Len(), h.LiveWords())
	}

	fmt.Println()
	fmt.Println("the guarded table's removal work was proportional to the number of")
	fmt.Println("dropped keys — no scan of the full table ever happened (§1, E2)")
}

// attachAndDrop inserts keys with vector values, keeping only every
// tenth key alive; the rest are dropped immediately.
func attachAndDrop(h *heap.Heap, access func(k, v obj.Value), n int) []*heap.Root {
	var kept []*heap.Root
	for i := 0; i < n; i++ {
		key := h.Cons(obj.FromFixnum(int64(i)), obj.Nil)
		val := h.MakeVector(6, obj.FromFixnum(int64(i)))
		access(key, val)
		if i%10 == 0 {
			kept = append(kept, h.NewRoot(key))
		}
		if i%1000 == 999 {
			h.Collect(0)
		}
	}
	return kept
}

// Quickstart: the guardian lifecycle from Go, mirroring the paper's
// first REPL transcript (§3).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/obj"
)

func main() {
	// A simulated Scheme heap with a generation-based collector.
	h := heap.NewDefault()

	// (define G (make-guardian))
	g := core.NewGuardian(h)

	// (define x (cons 'a 'b)) — held through a root so it survives
	// collections while we still want it.
	x := h.NewRoot(h.Cons(obj.FromChar('a'), obj.FromChar('b')))

	// (G x) — register x for preservation.
	g.Register(x.Get())

	// (G) => #f : x is still accessible.
	if _, ok := g.Get(); !ok {
		fmt.Println("(G) => #f        ; x is still accessible")
	}

	// (set! x #f) — drop the only reference.
	x.Release()

	// A collection covering x's generation proves it inaccessible. The
	// collector does not reclaim it: it saves it onto the guardian.
	h.Collect(h.MaxGeneration())

	// (G) => (a . b) : the object comes back intact, at a time of the
	// program's choosing, and clean-up code may do anything ordinary
	// code can do — including allocating.
	if v, ok := g.Get(); ok {
		fmt.Printf("(G) => (%c . %c)  ; returned intact after collection\n",
			h.Car(v).CharValue(), h.Cdr(v).CharValue())
		h.Cons(v, obj.Nil) // allocation inside "finalization" is fine
	}

	// (G) => #f : each registration is consumed exactly once.
	if _, ok := g.Get(); !ok {
		fmt.Println("(G) => #f        ; the guardian is empty again")
	}

	fmt.Printf("\ncollector: %d collections, %d words copied, %d guardian entries salvaged\n",
		h.Stats.Collections, h.Stats.WordsCopied, h.Stats.GuardianEntriesSalvaged)
}

// Recycle: §1's free-list motivation — a set of large bit maps
// representing graphical displays, expensive to initialize, whose
// structure stays fixed once built. A guardian-fed pool returns them
// to a free list when they would otherwise be reclaimed, so reuse
// skips the initialization cost.
//
//	go run ./examples/recycle
package main

import (
	"fmt"
	"time"

	"repro/internal/heap"
	"repro/internal/obj"
	"repro/internal/recycle"
)

const bitmapBytes = 64 * 1024

func expensiveInit(h *heap.Heap, v obj.Value) {
	// Pretend this paints a display background.
	for i := 0; i < bitmapBytes; i++ {
		h.ByteSet(v, i, byte(i*7))
	}
}

func main() {
	const frames = 100
	fmt.Println("free-list recycling of expensive bitmaps (§1)")
	fmt.Println()

	{
		h := heap.NewDefault()
		pool := recycle.NewPool(h,
			func(h *heap.Heap) obj.Value { return h.MakeBytevector(bitmapBytes) },
			expensiveInit)
		start := time.Now()
		for f := 0; f < frames; f++ {
			bmp := pool.Get()
			h.ByteSet(bmp, 0, byte(f)) // draw a frame
			// bmp dropped at end of frame
			h.Collect(h.MaxGeneration())
		}
		fmt.Printf("pool:  %3d created, %3d reused   %v total\n",
			pool.Created, pool.Reused, time.Since(start).Round(time.Millisecond))
	}
	{
		h := heap.NewDefault()
		start := time.Now()
		for f := 0; f < frames; f++ {
			bmp := h.MakeBytevector(bitmapBytes)
			expensiveInit(h, bmp)
			h.ByteSet(bmp, 0, byte(f))
			h.Collect(h.MaxGeneration())
		}
		fmt.Printf("fresh: %3d created, %3d reused   %v total\n",
			frames, 0, time.Since(start).Round(time.Millisecond))
	}

	fmt.Println()
	fmt.Println("the pool paid the initialization cost once; every later frame reused")
	fmt.Println("the bitmap the collector proved dead and handed back via the guardian")
}

// Images: saved heaps in the spirit of Chez Scheme. A Scheme session
// builds state — globals, a closure with captured state, a guardian
// with a pending registration — and is serialized to a byte image; a
// second, fresh machine restores it and picks up exactly where the
// first stopped, including retrieving the guarded object.
//
//	go run ./examples/images
package main

import (
	"bytes"
	"fmt"

	"repro/internal/heap"
	"repro/internal/scheme"
)

func main() {
	fmt.Println("machine images: suspend and resume a Scheme session")
	fmt.Println()

	// Session one: build state.
	m1 := scheme.New(heap.NewDefault(), nil)
	m1.MustEval(`
		(define counter
		  (let ([n 0])
		    (lambda () (set! n (+ n 1)) n)))
		(counter) (counter)              ; n = 2
		(define G (make-guardian))
		(define precious (list 'data 'worth 'keeping))
		(G precious)
		(set! precious #f)`)
	fmt.Printf("session 1: counter at %s, one object registered and dropped\n",
		m1.WriteString(m1.MustEval("(counter)"))) // n = 3

	var image bytes.Buffer
	if err := m1.SaveImage(&image); err != nil {
		panic(err)
	}
	fmt.Printf("image written: %d bytes\n\n", image.Len())

	// Session two: restore and continue.
	m2, err := scheme.LoadMachineImage(&image, nil)
	if err != nil {
		panic(err)
	}
	fmt.Printf("session 2: counter resumes at %s\n",
		m2.WriteString(m2.MustEval("(counter)"))) // n = 4
	got := m2.MustEval("(collect 3) (G)")
	fmt.Printf("session 2: guardian delivers %s\n", m2.WriteString(got))
	if errs := m2.H.Verify(); len(errs) != 0 {
		panic(errs[0])
	}
	fmt.Println("restored heap verified sound")
}

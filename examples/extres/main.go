// Extres: §1's external-resource scenario — Scheme programs using
// library routines must cope with memory managed by malloc/free,
// temporary files, and subprocesses. Each external resource gets a
// Scheme header registered with a guardian; when the header becomes
// inaccessible the manager frees the resource, at a time the program
// chooses. Explicit freeing composes with finalization without double
// frees.
//
//	go run ./examples/extres
package main

import (
	"fmt"

	"repro/internal/extres"
	"repro/internal/heap"
	"repro/internal/obj"
)

func main() {
	h := heap.NewDefault()
	arena := extres.NewArena()
	m := extres.NewManager(h, arena)

	fmt.Println("guardian-managed external resources (§1)")
	fmt.Println()

	// A long-lived resource, held through a root.
	held := h.NewRoot(m.Wrap(extres.Malloc, 4096))

	// A burst of short-lived resources of each kind, dropped at once.
	for i := 0; i < 30; i++ {
		m.Wrap(extres.Malloc, 256)
		m.Wrap(extres.TempFile, 1024)
		m.Wrap(extres.Subprocess, 1)
	}

	// One resource freed explicitly before its header dies.
	early := m.Wrap(extres.Malloc, 512)
	if err := m.FreeNow(early); err != nil {
		panic(err)
	}
	early = obj.False
	_ = early

	fmt.Printf("before collection: %3d live external resources (%d bytes)\n",
		arena.Live(), arena.LiveBytes)

	// The program decides when clean-up happens: collect, then release.
	h.Collect(h.MaxGeneration())
	freed := m.ReleaseDropped()

	fmt.Printf("after collect+release: %d freed by guardian, %d still live\n",
		freed, arena.Live())
	fmt.Printf("double frees: %d (explicit FreeNow composed safely)\n", arena.DoubleFrees)

	// The held resource survived; drop it and finish.
	held.Release()
	h.Collect(h.MaxGeneration())
	m.ReleaseDropped()
	fmt.Printf("after dropping the held header: %d live, %d total allocs, %d frees\n",
		arena.Live(), arena.Allocs, arena.Frees)
}

// Transport: §3's conservative transport guardians driving cheap
// eq-hash-table rehashing. Eq tables hash by address; the collector
// moves objects, so addresses change. Rehashing the whole table after
// every collection wastes work on tenured keys that no longer move;
// a transport guardian reports (a superset of) the moved keys, and its
// markers age along with the keys.
//
//	go run ./examples/transport
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/obj"
)

func main() {
	const keys = 2000
	fmt.Println("transport-guardian rehashing for eq hash tables (§3)")
	fmt.Println()

	for _, mode := range []core.RehashMode{core.RehashAll, core.RehashTransport} {
		h := heap.NewDefault()
		tbl := core.NewEqTable(h, 256, mode)
		roots := make([]*heap.Root, keys)
		for i := range roots {
			k := h.Cons(obj.FromFixnum(int64(i)), obj.Nil)
			roots[i] = h.NewRoot(k)
			tbl.Put(k, obj.FromFixnum(int64(i*2)))
		}
		// Tenure the keys (markers age with them).
		for i := 0; i < 4; i++ {
			h.Collect(h.MaxGeneration())
			tbl.Get(roots[0].Get())
		}
		tbl.KeysRehashed = 0

		// Young collections: tenured keys do not move.
		for round := 0; round < 10; round++ {
			for i := 0; i < 3000; i++ {
				h.Cons(obj.Nil, obj.Nil) // nursery churn
			}
			h.Collect(0)
			if v, ok := tbl.Get(roots[round].Get()); !ok || v.FixnumValue() != int64(round*2) {
				panic("lookup failed after collection")
			}
		}

		name := "rehash-all        "
		if mode == core.RehashTransport {
			name = "transport-guardian"
		}
		fmt.Printf("%s  keys rehashed across 10 young collections: %d\n",
			name, tbl.KeysRehashed)
	}

	fmt.Println()
	fmt.Println("markers are weak pairs re-registered with an ordinary guardian each")
	fmt.Println("time they surface, so they climb generations alongside their keys —")
	fmt.Println("after that, young collections cost the table nothing")
}

// Ports: the paper's motivating example (§1, §3). A program opens
// output ports, writes into their buffers, and drops them without
// closing — because of "exceptions and nonlocal exits", as the paper
// puts it. Guarded opens close dropped ports (flushing unwritten data)
// at each subsequent open; plain opens leak descriptors and lose the
// buffered bytes.
//
//	go run ./examples/ports
package main

import (
	"fmt"

	"repro/internal/heap"
	"repro/internal/obj"
	"repro/internal/ports"
)

func run(guarded bool) {
	h := heap.NewDefault()
	fs := ports.NewFS()
	fs.FDLimit = 16 // a small descriptor table, as on a real system
	m := ports.NewManager(h, fs)

	label := "plain open-output-file"
	if guarded {
		label = "guarded-open-output-file (§3)"
	}

	failures := 0
	written := 0
	for i := 0; i < 100; i++ {
		name := fmt.Sprintf("log-%03d.txt", i)
		var p obj.Value
		var err error
		if guarded {
			p, err = m.GuardedOpenOutput(name)
		} else {
			p, err = m.OpenOutput(name)
		}
		if err != nil {
			// Descriptor table exhausted: a real program would crash
			// or limp; we count and carry on.
			failures++
			continue
		}
		msg := fmt.Sprintf("entry %d: buffered, never explicitly flushed", i)
		if err := m.WriteString(p, msg); err != nil {
			panic(err)
		}
		written += len(msg)
		// p is dropped here — no close, as after a nonlocal exit.
		if i%10 == 9 {
			h.Collect(1) // periodic collections prove dropped ports dead
		}
	}
	// End of program: one full collection plus close-dropped-ports
	// (what a guarded-exit would do, §3).
	h.Collect(h.MaxGeneration())
	m.CloseDroppedPorts()

	onDisk := 0
	for _, f := range fs.Names() {
		b, _ := fs.ReadFile(f)
		onDisk += len(b)
	}
	fmt.Printf("--- %s\n", label)
	fmt.Printf("    opens failed (EMFILE):  %d\n", failures)
	fmt.Printf("    descriptors leaked:     %d\n", fs.OpenCount())
	fmt.Printf("    bytes written/on disk:  %d/%d (lost %d)\n",
		written, onDisk, written-onDisk)
	fmt.Printf("    ports closed by guard:  %d\n\n", m.DroppedClosed)
}

func main() {
	fmt.Println("dropped-port finalization — the paper's motivating example")
	fmt.Println()
	run(true)
	run(false)
}

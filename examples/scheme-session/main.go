// Scheme-session: runs the paper's §3 transcripts and Figure 1 through
// the embedded Scheme interpreter, printing each form and its result —
// the published sessions, reproduced end to end on the simulated heap.
//
//	go run ./examples/scheme-session
package main

import (
	"fmt"
	"os"

	"repro/internal/heap"
	"repro/internal/scheme"
)

var session = []string{
	";; --- the paper's first transcript ---",
	"(define G (make-guardian))",
	"(define x (cons 'a 'b))",
	"(G x)",
	"(G)",
	"(set! x #f)",
	"(collect 1)",
	"(G)",
	"(G)",
	";; --- registering a guardian with another guardian ---",
	"(define H (make-guardian))",
	"(define y (cons 'c 'd))",
	"(G H)",
	"(H y)",
	"(set! y #f)",
	"(set! H #f)",
	"(collect 1)",
	"((G))",
	";; --- figure 1: a guarded hash table ---",
	"(define (phash k size) (modulo (car k) size))",
	"(define tbl (make-guarded-hash-table phash 13))",
	"(define k1 (cons 1 'one))",
	"(tbl k1 'value-1)",
	"(tbl k1 'ignored)",
	";; --- transport guardian ---",
	"(define tg (make-transport-guardian))",
	"(define z (cons 'tracked '()))",
	"(tg z)",
	"(collect 0)",
	"(eq? (tg) z)",
	"(tg)",
}

func main() {
	h := heap.NewDefault()
	m := scheme.New(h, nil)
	m.Out = os.Stdout

	for _, form := range session {
		if len(form) > 1 && form[0] == ';' {
			fmt.Println(form)
			continue
		}
		fmt.Printf("> %s\n", form)
		v, err := m.EvalString(form)
		if err != nil {
			fmt.Println(err)
			continue
		}
		if s := m.WriteString(v); s != "#<void>" {
			fmt.Println(s)
		}
	}
	fmt.Printf("\n;; collector ran %d collections during this session\n", h.Stats.Collections)
}

package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/heap"
)

// TestTraceEmitsValidJSONLines is the acceptance check for benchgc
// -trace: one valid JSON line per collection, each of which
// round-trips through encoding/json without loss.
func TestTraceEmitsValidJSONLines(t *testing.T) {
	var buf bytes.Buffer
	const gcs = 25
	h, err := runTraceWorkload(&buf, gcs, 1, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if h.Stats.Collections != gcs {
		t.Fatalf("workload ran %d collections, want %d", h.Stats.Collections, gcs)
	}
	sc := bufio.NewScanner(&buf)
	var lines int
	var prevSeq uint64
	for sc.Scan() {
		line := sc.Bytes()
		lines++
		var ev heap.TraceEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", lines, err, line)
		}
		// Round-trip: marshal the decoded event and decode again; the
		// two decodings must agree field for field.
		re, err := json.Marshal(&ev)
		if err != nil {
			t.Fatalf("line %d does not re-marshal: %v", lines, err)
		}
		var ev2 heap.TraceEvent
		if err := json.Unmarshal(re, &ev2); err != nil {
			t.Fatalf("line %d round-trip decode failed: %v", lines, err)
		}
		if !reflect.DeepEqual(ev, ev2) {
			t.Fatalf("line %d did not round-trip:\n %+v\nvs %+v", lines, ev, ev2)
		}
		if ev.Seq <= prevSeq {
			t.Fatalf("line %d: seq %d not increasing (prev %d)", lines, ev.Seq, prevSeq)
		}
		prevSeq = ev.Seq
		if ev.PauseNS <= 0 {
			t.Fatalf("line %d: non-positive pause", lines)
		}
		var phaseSum int64
		for _, ns := range ev.PhaseNS {
			phaseSum += ns
		}
		if phaseSum <= 0 || phaseSum > ev.PauseNS {
			t.Fatalf("line %d: phase sum %d vs pause %d", lines, phaseSum, ev.PauseNS)
		}
	}
	if lines != gcs {
		t.Fatalf("emitted %d JSON lines, want one per collection (%d)", lines, gcs)
	}
	// The workload must exercise the phases the paper talks about.
	if h.Stats.GuardianEntriesSalvaged == 0 || h.Stats.GuardianEntriesHeld == 0 {
		t.Fatal("trace workload exercised no guardian salvage/hold")
	}
	if h.Stats.WeakPairsScanned == 0 {
		t.Fatal("trace workload exercised no weak pairs")
	}
}

// TestTraceWithPauseBudgetEmitsSlices checks the -pause-budget wiring:
// with a budget set, old-space collections in the trace workload run
// sliced, every event's slice pauses sum exactly to its pause_ns, and
// at least one collection reports slices.
func TestTraceWithPauseBudgetEmitsSlices(t *testing.T) {
	var buf bytes.Buffer
	if _, err := runTraceWorkload(&buf, 25, 1, 200*time.Microsecond, true); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	sliced := 0
	for sc.Scan() {
		var ev heap.TraceEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		if len(ev.Slices) == 0 {
			continue
		}
		sliced++
		var sum int64
		for _, s := range ev.Slices {
			sum += s.PauseNS
		}
		if sum != ev.PauseNS {
			t.Fatalf("gen %d collection: slice pauses sum to %d, pause_ns %d", ev.Gen, sum, ev.PauseNS)
		}
	}
	if sliced == 0 {
		t.Fatal("no collection ran sliced under -pause-budget")
	}
}

// TestPauseWorkloadOrderDeterminism is the cheap in-process version of
// the -pause-bench acceptance claim: the same workload run monolithic
// and sliced must salvage the same guardian representatives in the
// same tconc order.
func TestPauseWorkloadOrderDeterminism(t *testing.T) {
	const gcs, pairs = 4, 20000
	_, _, _, ref, err := runPauseWorkload(0, gcs, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) != gcs*64 {
		t.Fatalf("monolithic run salvaged %d, want %d", len(ref), gcs*64)
	}
	_, slices, _, got, err := runPauseWorkload(300*time.Microsecond, gcs, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if len(slices) == 0 {
		t.Fatal("sliced run reported no slices")
	}
	if !reflect.DeepEqual(ref, got) {
		t.Fatalf("tconc order diverged: monolithic %d entries vs sliced %d", len(ref), len(got))
	}
}

// TestTuneBenchReducedScale runs the AutoTune ablation at toy scale
// through the shared runner path: the report must be written, re-read,
// and pass its schema self-check (the comparative acceptance bounds
// are full-scale-only and must NOT fail a reduced run).
func TestTuneBenchReducedScale(t *testing.T) {
	if testing.Short() {
		t.Skip("tune-bench workloads are slow in -short")
	}
	path := t.TempDir() + "/BENCH_tune.json"
	var buf bytes.Buffer
	if err := runTuneBench(&buf, path, 1, 60_000); err != nil {
		t.Fatalf("runTuneBench: %v\n%s", err, buf.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep tuneBenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.FullScale {
		t.Fatal("reduced run marked full_scale")
	}
	if len(rep.Workloads) != 3 {
		t.Fatalf("workloads = %d, want 3", len(rep.Workloads))
	}
	for _, w := range rep.Workloads {
		if w.AutoTune.TriggerWords == w.Fixed.TriggerWords && w.AutoTune.CollectionsP50 == 0 {
			t.Fatalf("%s: autotune cell shows no tuning activity: %+v", w.Workload, w.AutoTune)
		}
	}
}

func TestPhaseSummaryRendersAllPhases(t *testing.T) {
	var sink bytes.Buffer
	h, err := runTraceWorkload(&sink, 5, 1, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if sink.Len() != 0 {
		t.Fatal("workload emitted JSON with emitJSON=false")
	}
	var buf bytes.Buffer
	printPhaseSummary(&buf, h)
	out := buf.String()
	for _, name := range heap.PhaseNames() {
		if !strings.Contains(out, name) {
			t.Fatalf("phase summary missing %q:\n%s", name, out)
		}
	}
	if !strings.Contains(out, "collections: 5") {
		t.Fatalf("phase summary missing collection count:\n%s", out)
	}
}

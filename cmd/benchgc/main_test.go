package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/heap"
)

// TestTraceEmitsValidJSONLines is the acceptance check for benchgc
// -trace: one valid JSON line per collection, each of which
// round-trips through encoding/json without loss.
func TestTraceEmitsValidJSONLines(t *testing.T) {
	var buf bytes.Buffer
	const gcs = 25
	h, err := runTraceWorkload(&buf, gcs, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if h.Stats.Collections != gcs {
		t.Fatalf("workload ran %d collections, want %d", h.Stats.Collections, gcs)
	}
	sc := bufio.NewScanner(&buf)
	var lines int
	var prevSeq uint64
	for sc.Scan() {
		line := sc.Bytes()
		lines++
		var ev heap.TraceEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", lines, err, line)
		}
		// Round-trip: marshal the decoded event and decode again; the
		// two decodings must agree field for field.
		re, err := json.Marshal(&ev)
		if err != nil {
			t.Fatalf("line %d does not re-marshal: %v", lines, err)
		}
		var ev2 heap.TraceEvent
		if err := json.Unmarshal(re, &ev2); err != nil {
			t.Fatalf("line %d round-trip decode failed: %v", lines, err)
		}
		if !reflect.DeepEqual(ev, ev2) {
			t.Fatalf("line %d did not round-trip:\n %+v\nvs %+v", lines, ev, ev2)
		}
		if ev.Seq <= prevSeq {
			t.Fatalf("line %d: seq %d not increasing (prev %d)", lines, ev.Seq, prevSeq)
		}
		prevSeq = ev.Seq
		if ev.PauseNS <= 0 {
			t.Fatalf("line %d: non-positive pause", lines)
		}
		var phaseSum int64
		for _, ns := range ev.PhaseNS {
			phaseSum += ns
		}
		if phaseSum <= 0 || phaseSum > ev.PauseNS {
			t.Fatalf("line %d: phase sum %d vs pause %d", lines, phaseSum, ev.PauseNS)
		}
	}
	if lines != gcs {
		t.Fatalf("emitted %d JSON lines, want one per collection (%d)", lines, gcs)
	}
	// The workload must exercise the phases the paper talks about.
	if h.Stats.GuardianEntriesSalvaged == 0 || h.Stats.GuardianEntriesHeld == 0 {
		t.Fatal("trace workload exercised no guardian salvage/hold")
	}
	if h.Stats.WeakPairsScanned == 0 {
		t.Fatal("trace workload exercised no weak pairs")
	}
}

func TestPhaseSummaryRendersAllPhases(t *testing.T) {
	var sink bytes.Buffer
	h, err := runTraceWorkload(&sink, 5, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if sink.Len() != 0 {
		t.Fatal("workload emitted JSON with emitJSON=false")
	}
	var buf bytes.Buffer
	printPhaseSummary(&buf, h)
	out := buf.String()
	for _, name := range heap.PhaseNames() {
		if !strings.Contains(out, name) {
			t.Fatalf("phase summary missing %q:\n%s", name, out)
		}
	}
	if !strings.Contains(out, "collections: 5") {
		t.Fatalf("phase summary missing collection count:\n%s", out)
	}
}

package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
)

// The five JSON-report benchmarks (-parallel-bench, -pause-bench,
// -server-bench, -fork-bench, -tune-bench) share one runner: each
// registers a flag and a default report path here, main dispatches the
// first selected entry, and the shared -out flag overrides the default
// path uniformly. Every report goes through writeBenchReport, which
// re-reads what it wrote and runs the bench's schema self-check before
// the process can exit 0 — CI gates on the file, so a silently
// malformed report must fail the producing run, not the consumer.

// benchEntry is one registered benchmark entry point.
type benchEntry struct {
	name       string // flag name, e.g. "parallel-bench"
	defaultOut string // report path when -out is not given
	selected   *bool
	run        func(w io.Writer, outPath string) error
}

var benchEntries []benchEntry

// registerBench defines the -<name> flag and records the entry. The
// run closure may read other flag values: it executes after
// flag.Parse.
func registerBench(name, defaultOut, usage string, run func(w io.Writer, outPath string) error) {
	benchEntries = append(benchEntries, benchEntry{
		name:       name,
		defaultOut: defaultOut,
		selected:   flag.Bool(name, false, usage+" and write a JSON report ("+defaultOut+")"),
		run:        run,
	})
}

// dispatchBench runs the first selected registered benchmark,
// resolving its output path from -out. Returns false when no
// benchmark flag was given.
func dispatchBench(w io.Writer, out string) (bool, error) {
	for _, e := range benchEntries {
		if !*e.selected {
			continue
		}
		path := e.defaultOut
		if out != "" {
			path = out
		}
		return true, e.run(w, path)
	}
	return false, nil
}

// writeBenchReport writes rep to path as indented JSON and then
// self-checks it: the file is re-read from disk, decoded into fresh
// (a pointer to a zero value of the report type), and check runs
// against that decoded copy. Checking the re-read bytes rather than
// the in-memory struct catches marshalling losses (dropped fields,
// omitempty surprises) as well as invariant violations.
func writeBenchReport(w io.Writer, label, path string, rep, fresh any, check func() error) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	reread, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("self-check of %s: %w", path, err)
	}
	if err := json.Unmarshal(reread, fresh); err != nil {
		return fmt.Errorf("self-check of %s: %w", path, err)
	}
	if err := check(); err != nil {
		return fmt.Errorf("self-check of %s: %w", path, err)
	}
	fmt.Fprintf(w, "%s: wrote %s\n", label, path)
	return nil
}

package main

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/server"
)

// benchgc -server-bench: the multi-session serving benchmark. It
// measures the scenario the guardian design exists for at scale —
// thousands of isolated guarded heaps behind one event loop:
//
//  1. Boot: register -server-sessions sessions (each a full heap +
//     interpreter + prelude boot) holding a guarded port and a guarded
//     external resource, and keep all of them registered at once.
//  2. Churn: -server-churn register/run/disconnect cycles on top of
//     the standing population, measuring sessions/sec and the
//     disconnect-to-reclaimed latency distribution (the time until the
//     guardian tconc path has closed every port and freed every
//     resource of the dropped session).
//  3. Shutdown: disconnect the standing population and drain it,
//     proving zero leaked descriptors and resources across the whole
//     run.
//
// The report is written as JSON (BENCH_server.json by default) and
// schema-checked before the process exits 0, so CI can gate on it.

type serverBootStats struct {
	Sessions       int     `json:"sessions"`
	Seconds        float64 `json:"seconds"`
	SessionsPerSec float64 `json:"sessions_per_sec"`
	// PeakRegistered is sampled after boot: every booted session is
	// concurrently registered (the >= 10k standing-population claim).
	PeakRegistered int `json:"peak_registered"`
}

type serverChurnStats struct {
	Cycles         int     `json:"cycles"`
	Seconds        float64 `json:"seconds"`
	SessionsPerSec float64 `json:"sessions_per_sec"`
	// ReclaimLatency is disconnect-to-fully-reclaimed wall time per
	// churned session: every guarded port closed and every external
	// resource freed through the guardian path (queueing included —
	// this is the latency a client of the serving system observes).
	ReclaimLatency benchQuantiles `json:"reclaim_latency"`
	// ReclaimCollections distributes the drain collections needed.
	ReclaimCollectionsP50 int `json:"reclaim_collections_p50"`
	ReclaimCollectionsMax int `json:"reclaim_collections_max"`
	LeakedPorts           int `json:"leaked_ports"`
	LeakedResources       int `json:"leaked_resources"`
}

type serverShutdownStats struct {
	Seconds         float64        `json:"seconds"`
	Reclaimed       int            `json:"reclaimed"`
	ReclaimLatency  benchQuantiles `json:"reclaim_latency"`
	LeakedPorts     int            `json:"leaked_ports"`
	LeakedResources int            `json:"leaked_resources"`
}

type serverBenchReport struct {
	Description string `json:"description"`
	GoMaxProcs  int    `json:"gomaxprocs"`
	Executors   int    `json:"executors"`
	GCWorkers   int    `json:"gc_workers"`
	// RequestsServed totals client requests evaluated across all
	// phases; MessagesPosted the inter-session wire messages.
	RequestsServed uint64              `json:"requests_served"`
	MessagesPosted uint64              `json:"messages_posted"`
	Boot           serverBootStats     `json:"boot"`
	Churn          serverChurnStats    `json:"churn"`
	Shutdown       serverShutdownStats `json:"shutdown"`
}

// sessionWorkload is what each benchmark session runs once at boot: it
// opens a guarded port, allocates a guarded resource, holds both in
// globals (so only disconnect can reclaim them), and builds a little
// list structure for allocation pressure.
const sessionWorkload = `
(begin
  (define port (open-session-port "bench.tmp"))
  (define res (session-alloc 0 64))
  (define data
    (let loop ((i 0) (acc '()))
      (if (< i 40) (loop (+ i 1) (cons i acc)) acc)))
  (length data))`

func runServerBench(w io.Writer, outPath string, sessions, churn int) error {
	nExec := runtime.GOMAXPROCS(0)
	if nExec > 4 {
		nExec = 4
	}
	cfg := server.Config{Executors: nExec, GCWorkers: 2}
	srv := server.New(cfg)
	srv.Start()
	defer srv.Close()

	rep := serverBenchReport{
		Description: "multi-session server: standing population boot, churn reclaim latency, full drain",
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Executors:   srv.Config().Executors,
		GCWorkers:   srv.Config().GCWorkers,
	}

	// Phase 1: boot the standing population.
	fmt.Fprintf(w, "server-bench: booting %d sessions...\n", sessions)
	start := time.Now()
	ids := make([]server.SessionID, 0, sessions)
	for i := 0; i < sessions; i++ {
		id, err := srv.Register(sessionWorkload)
		if err != nil {
			return fmt.Errorf("boot register %d: %w", i, err)
		}
		ids = append(ids, id)
	}
	if !srv.WaitIdle(10 * time.Minute) {
		return fmt.Errorf("boot did not quiesce")
	}
	bootSec := time.Since(start).Seconds()
	st := srv.Stats()
	rep.Boot = serverBootStats{
		Sessions:       sessions,
		Seconds:        bootSec,
		SessionsPerSec: float64(sessions) / bootSec,
		PeakRegistered: st.Live,
	}
	fmt.Fprintf(w, "server-bench: %d sessions live (%.0f sessions/sec boot)\n",
		st.Live, rep.Boot.SessionsPerSec)
	if st.Live != sessions {
		return fmt.Errorf("boot: %d live sessions, want %d", st.Live, sessions)
	}

	// Phase 2: churn on top of the standing population.
	fmt.Fprintf(w, "server-bench: churning %d register/run/disconnect cycles...\n", churn)
	start = time.Now()
	for i := 0; i < churn; i++ {
		id, err := srv.Register(sessionWorkload)
		if err != nil {
			return fmt.Errorf("churn register %d: %w", i, err)
		}
		if err := srv.Disconnect(id); err != nil {
			return fmt.Errorf("churn disconnect %d: %w", i, err)
		}
	}
	if !srv.WaitIdle(10 * time.Minute) {
		return fmt.Errorf("churn did not quiesce")
	}
	churnSec := time.Since(start).Seconds()

	recs := srv.ReclaimRecords()
	if len(recs) != churn {
		return fmt.Errorf("churn: %d reclaim records, want %d", len(recs), churn)
	}
	lat := make([]int64, 0, len(recs))
	colls := make([]int, 0, len(recs))
	leakP, leakR := 0, 0
	for _, r := range recs {
		lat = append(lat, int64(r.Latency))
		colls = append(colls, r.Collections)
		leakP += r.LeakedPorts
		leakR += r.LeakedResources
	}
	rep.Churn = serverChurnStats{
		Cycles:                churn,
		Seconds:               churnSec,
		SessionsPerSec:        float64(churn) / churnSec,
		ReclaimLatency:        quantilesOf(lat),
		ReclaimCollectionsP50: intQuantile(colls, 0.50),
		ReclaimCollectionsMax: intQuantile(colls, 1.0),
		LeakedPorts:           leakP,
		LeakedResources:       leakR,
	}
	fmt.Fprintf(w, "server-bench: churn %.0f sessions/sec, reclaim p50 %v p99 %v max %v\n",
		rep.Churn.SessionsPerSec,
		time.Duration(rep.Churn.ReclaimLatency.P50),
		time.Duration(rep.Churn.ReclaimLatency.P99),
		time.Duration(rep.Churn.ReclaimLatency.Max))

	// Phase 3: drain the standing population.
	fmt.Fprintf(w, "server-bench: draining the standing population...\n")
	start = time.Now()
	for _, id := range ids {
		if err := srv.Disconnect(id); err != nil {
			return fmt.Errorf("shutdown disconnect %d: %w", id, err)
		}
	}
	if !srv.WaitIdle(10 * time.Minute) {
		return fmt.Errorf("shutdown did not quiesce")
	}
	shutSec := time.Since(start).Seconds()

	all := srv.ReclaimRecords()[churn:]
	lat = lat[:0]
	leakP, leakR = 0, 0
	for _, r := range all {
		lat = append(lat, int64(r.Latency))
		leakP += r.LeakedPorts
		leakR += r.LeakedResources
	}
	rep.Shutdown = serverShutdownStats{
		Seconds:         shutSec,
		Reclaimed:       len(all),
		ReclaimLatency:  quantilesOf(lat),
		LeakedPorts:     leakP,
		LeakedResources: leakR,
	}
	final := srv.Stats()
	rep.RequestsServed = final.Requests
	rep.MessagesPosted = final.Messages
	if final.Live != 0 {
		return fmt.Errorf("shutdown: %d sessions still live", final.Live)
	}
	if final.LeakedPorts != 0 || final.LeakedRes != 0 {
		return fmt.Errorf("leaks across run: ports=%d resources=%d", final.LeakedPorts, final.LeakedRes)
	}
	fmt.Fprintf(w, "server-bench: drained %d sessions in %.1fs, zero leaks\n", len(all), shutSec)

	var fresh serverBenchReport
	return writeBenchReport(w, "server-bench", outPath, &rep, &fresh, func() error {
		return checkServerBench(&fresh, sessions, churn)
	})
}

// checkServerBench validates the re-read report's schema and headline
// invariants for writeBenchReport.
func checkServerBench(rep *serverBenchReport, sessions, churn int) error {
	switch {
	case rep.Boot.PeakRegistered != sessions:
		return fmt.Errorf("peak_registered = %d, want %d", rep.Boot.PeakRegistered, sessions)
	case rep.Boot.SessionsPerSec <= 0:
		return fmt.Errorf("boot sessions_per_sec = %v", rep.Boot.SessionsPerSec)
	case rep.Churn.Cycles != churn:
		return fmt.Errorf("churn cycles = %d, want %d", rep.Churn.Cycles, churn)
	case churn > 0 && rep.Churn.SessionsPerSec <= 0:
		return fmt.Errorf("churn sessions_per_sec = %v", rep.Churn.SessionsPerSec)
	case churn > 0 && rep.Churn.ReclaimLatency.P99 < rep.Churn.ReclaimLatency.P50:
		return fmt.Errorf("reclaim latency quantiles disordered: %+v", rep.Churn.ReclaimLatency)
	case rep.Churn.LeakedPorts != 0 || rep.Churn.LeakedResources != 0:
		return fmt.Errorf("churn leaks: %d/%d", rep.Churn.LeakedPorts, rep.Churn.LeakedResources)
	case rep.Shutdown.Reclaimed != sessions:
		return fmt.Errorf("shutdown reclaimed = %d, want %d", rep.Shutdown.Reclaimed, sessions)
	case rep.Shutdown.LeakedPorts != 0 || rep.Shutdown.LeakedResources != 0:
		return fmt.Errorf("shutdown leaks: %d/%d", rep.Shutdown.LeakedPorts, rep.Shutdown.LeakedResources)
	}
	return nil
}

// intQuantile returns the q-quantile of xs (nearest-rank), or 0 for
// empty input.
func intQuantile(xs []int, q float64) int {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]int(nil), xs...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	idx := int(q*float64(len(sorted))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

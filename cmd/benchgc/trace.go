package main

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/obj"
)

// runTraceWorkload drives a representative workload — a tenured list,
// guardians with both held and salvaged registrations, weak pairs,
// old-generation mutations, and generation-0 churn — for exactly the
// requested number of collections under the radix policy. workers
// selects the collector worker count (1 = sequential, 0 = the
// adaptive per-collection policy); a non-zero budget runs the
// old-space collections deadline-sliced (Config.PauseBudget). When
// emitJSON is set, every collection's TraceEvent is written to out as
// one JSON line (JSON Lines, oldest first). The heap is returned so
// the caller can render phase summaries from its Stats.
func runTraceWorkload(out io.Writer, collections, workers int, budget time.Duration, emitJSON bool) (*heap.Heap, error) {
	cfg := heap.DefaultConfig()
	cfg.PauseBudget = budget
	h := heap.MustNew(cfg)
	h.SetWorkers(workers)
	var emitErr error
	if emitJSON {
		enc := json.NewEncoder(out)
		h.SetTraceFunc(func(ev heap.TraceEvent) {
			if err := enc.Encode(ev); err != nil && emitErr == nil {
				emitErr = err
			}
		})
	}
	g := core.NewGuardian(h)
	lst := h.NewRoot(obj.Nil)
	for i := 0; i < 20000; i++ {
		p := h.Cons(obj.FromFixnum(int64(i)), obj.Nil)
		lst.Set(h.Cons(p, lst.Get()))
		if i%8 == 0 {
			lst.Set(h.Cons(h.WeakCons(p, obj.Nil), lst.Get()))
		}
		if i%16 == 0 {
			g.Register(p) // held: the list keeps p reachable
		}
	}
	for i := 0; i < collections; i++ {
		for j := 0; j < 2000; j++ {
			h.Cons(obj.FromFixnum(int64(j)), obj.Nil) // churn
		}
		g.Register(h.Cons(obj.FromFixnum(int64(i)), obj.Nil)) // dropped: salvaged
		h.SetCar(lst.Get(), h.Cons(obj.FromFixnum(-1), obj.Nil))
		h.CollectAuto()
		for {
			if _, ok := g.Get(); !ok {
				break
			}
		}
	}
	return h, emitErr
}

// printPhaseSummary renders the accumulated per-phase pause
// attribution (cumulative Stats totals plus the last collection's
// CollectionReport) as an aligned table.
func printPhaseSummary(w io.Writer, h *heap.Heap) {
	st := &h.Stats
	rep := h.LastReport()
	var phaseTotal int64
	for _, d := range st.PhaseTotals {
		phaseTotal += d.Nanoseconds()
	}
	lastPause := time.Duration(0)
	var lastPhases [heap.NumPhases]time.Duration
	if rep != nil {
		lastPause = rep.Pause
		lastPhases = rep.Phases
	}
	fmt.Fprintf(w, "collections: %d, total pause %v (last %v)\n",
		st.Collections, st.TotalPause, lastPause)
	fmt.Fprintf(w, "%-10s  %14s  %14s  %7s\n", "phase", "total", "last", "share")
	for i := heap.Phase(0); i < heap.NumPhases; i++ {
		share := 0.0
		if phaseTotal > 0 {
			share = 100 * float64(st.PhaseTotals[i].Nanoseconds()) / float64(phaseTotal)
		}
		fmt.Fprintf(w, "%-10s  %14v  %14v  %6.1f%%\n",
			i, st.PhaseTotals[i], lastPhases[i], share)
	}
	if rep != nil && rep.GuardianRounds > 0 {
		fmt.Fprintf(w, "guardian rounds (last): %d\n", rep.GuardianRounds)
	}
}

package main

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/heap"
	"repro/internal/obj"
)

// benchgc -tune-bench: the AutoTune ablation. It runs three
// trigger-driven workloads — gcbench (binary-tree build/drop),
// hashtable (insert/rehash/reset churn), recycle (sliding window of
// short-lived lists) — twice each: once under the fixed default policy
// and once with Config.AutoTune, which retunes the gen-0 trigger from
// measured survival after every collection. Collections are never
// explicit: the workloads allocate and poll Checkpoint, so the
// collection cadence is entirely the policy's, which is the thing
// being measured.
//
// Per workload x policy cell the report carries p50 mutator throughput
// (ops per second of non-GC time), total GC pause time, the collection
// count, and the trigger the adaptive policy converged to. The
// headline comparisons — AutoTune matches or beats fixed on at least
// one workload, and never regresses p50 mutator throughput by more
// than 10% on any — are enforced by the schema self-check at full
// scale (the reduced-scale CI smoke checks schema only; timing ratios
// at toy sizes are noise).

// tuneDefaultOps is the per-rep operation count of the committed
// full-scale run.
const tuneDefaultOps = 1_500_000

// tuneQuantiles is benchQuantiles for a unitless measure (ops/sec
// here), so the JSON field names don't claim nanoseconds.
type tuneQuantiles struct {
	P50  int64 `json:"p50"`
	P90  int64 `json:"p90"`
	P99  int64 `json:"p99"`
	Max  int64 `json:"max"`
	Mean int64 `json:"mean"`
}

func tuneQuantilesOf(xs []int64) tuneQuantiles {
	q := quantilesOf(xs)
	return tuneQuantiles{P50: q.P50, P90: q.P90, P99: q.P99, Max: q.Max, Mean: q.Mean}
}

type tuneCell struct {
	Policy string `json:"policy"` // "fixed" or "autotune"
	Reps   int    `json:"reps"`
	// MutatorOpsPerSec quantiles are over per-rep mutator throughput:
	// ops divided by (wall time minus GC pause time).
	MutatorOpsPerSec tuneQuantiles `json:"mutator_ops_per_sec"`
	// GCTotal quantiles are over per-rep summed collection pauses.
	GCTotal        benchQuantiles `json:"gc_total"`
	CollectionsP50 int64          `json:"collections_p50"`
	// TriggerWords is the final rep's live gen-0 trigger: the
	// configured constant for fixed, the converged value for autotune.
	TriggerWords int `json:"trigger_words"`
}

type tuneWorkloadResult struct {
	Workload string   `json:"workload"`
	Ops      int      `json:"ops"`
	Fixed    tuneCell `json:"fixed"`
	AutoTune tuneCell `json:"autotune"`
	// ThroughputRatio is autotune/fixed p50 mutator throughput (>1 =
	// autotune faster); GCTimeRatio is autotune/fixed p50 total GC
	// pause (<1 = autotune pauses less).
	ThroughputRatio float64 `json:"throughput_ratio"`
	GCTimeRatio     float64 `json:"gc_time_ratio"`
	// Improved: autotune matched or beat fixed on p50 mutator
	// throughput or on total GC time.
	Improved bool `json:"improved"`
}

type tuneBenchReport struct {
	Description string               `json:"description"`
	GoMaxProcs  int                  `json:"gomaxprocs"`
	Reps        int                  `json:"reps"`
	Ops         int                  `json:"ops"`
	FullScale   bool                 `json:"full_scale"`
	Workloads   []tuneWorkloadResult `json:"workloads"`
	// ImprovedWorkloads counts workloads where autotune matched or
	// beat fixed; MaxThroughputRegressionPct is the worst p50 mutator
	// throughput loss across workloads (0 = no workload regressed).
	ImprovedWorkloads          int     `json:"improved_workloads"`
	MaxThroughputRegressionPct float64 `json:"max_throughput_regression_pct"`
	// AcceptancePass is the headline claim, asserted by the self-check
	// when FullScale: >= 1 improved workload and no regression > 10%.
	AcceptancePass bool `json:"acceptance_pass"`
}

// tuneWorkload is one workload: fn drives ops operations against h,
// polling h.Checkpoint so the policy's trigger decides every
// collection.
type tuneWorkload struct {
	name string
	fn   func(h *heap.Heap, ops int)
}

// tuneTree builds a complete binary tree of pairs of the given depth
// (2^depth - 1 conses). Safe to hold in Go locals: in legacy
// single-mutator mode collections happen only at Checkpoint.
func tuneTree(h *heap.Heap, depth int) obj.Value {
	if depth == 0 {
		return obj.Nil
	}
	return h.Cons(tuneTree(h, depth-1), tuneTree(h, depth-1))
}

// tuneGCBench is the binary-tree workload: a rooted long-lived tree
// for residency, a stream of short-lived trees for death. One op = one
// allocated tree node.
func tuneGCBench(h *heap.Heap, ops int) {
	long := h.NewRoot(tuneTree(h, 12)) // 4095 long-lived nodes
	defer long.Release()
	const shortDepth = 8 // 255 nodes per short tree
	for done := 0; done < ops; done += 255 {
		tuneTree(h, shortDepth)
		h.Checkpoint()
	}
}

// tuneHashtable is the table-churn workload: chained insertion into a
// rooted bucket vector, doubling rehash on load factor 8 (the rehash
// allocates progressively larger vectors, exercising the large-object
// run pool), and a full reset at 60k entries (mass death). One op =
// one insertion.
func tuneHashtable(h *heap.Heap, ops int) {
	table := h.NewRoot(h.MakeVector(64, obj.Nil))
	defer table.Release()
	count := 0
	for i := 0; i < ops; i++ {
		vec := table.Get()
		n := h.VectorLength(vec)
		key := int64(uint32(i*2654435761) % 1_000_003)
		idx := int(key) % n
		entry := h.Cons(obj.FromFixnum(key), obj.FromFixnum(int64(i)))
		h.VectorSet(vec, idx, h.Cons(entry, h.VectorRef(vec, idx)))
		count++
		switch {
		case count >= 60_000:
			table.Set(h.MakeVector(64, obj.Nil)) // reset: everything dies
			count = 0
		case count >= 8*n:
			// Rehash into a doubled vector.
			nv := h.MakeVector(2*n, obj.Nil)
			tmp := h.NewRoot(nv)
			for b := 0; b < n; b++ {
				for c := h.VectorRef(table.Get(), b); c != obj.Nil; c = h.Cdr(c) {
					e := h.Car(c)
					j := int(h.Car(e).FixnumValue()) % (2 * n)
					h.VectorSet(tmp.Get(), j, h.Cons(e, h.VectorRef(tmp.Get(), j)))
				}
			}
			table.Set(tmp.Get())
			tmp.Release()
		}
		if i&255 == 255 {
			h.Checkpoint()
		}
	}
}

// tuneRecycle is the sliding-window workload: a ring of 64 rooted
// lists of 100 pairs each; every step builds a fresh list and evicts
// the oldest, so nearly everything allocated dies young. One op = one
// allocated pair.
func tuneRecycle(h *heap.Heap, ops int) {
	const window, listLen = 64, 100
	ring := make([]*heap.Root, window)
	for i := range ring {
		ring[i] = h.NewRoot(obj.Nil)
	}
	defer func() {
		for _, r := range ring {
			r.Release()
		}
	}()
	slot := 0
	for done := 0; done < ops; done += listLen {
		var lst obj.Value = obj.Nil
		for j := 0; j < listLen; j++ {
			lst = h.Cons(obj.FromFixnum(int64(j)), lst)
		}
		ring[slot].Set(lst)
		slot = (slot + 1) % window
		h.Checkpoint()
	}
}

var tuneWorkloads = []tuneWorkload{
	{"gcbench", tuneGCBench},
	{"hashtable", tuneHashtable},
	{"recycle", tuneRecycle},
}

// tuneRep runs one workload rep under the given policy mode and
// returns wall ns, summed GC pause ns, collection count, and the final
// live trigger.
func tuneRep(wl tuneWorkload, autotune bool, ops int) (wallNS, gcNS int64, collections uint64, trigger int, err error) {
	cfg := heap.DefaultConfig()
	cfg.AutoTune = autotune
	h, err := heap.New(cfg)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	h.SetTraceFunc(func(ev heap.TraceEvent) { gcNS += ev.PauseNS })
	start := time.Now()
	wl.fn(h, ops)
	wallNS = time.Since(start).Nanoseconds()
	h.MustVerify()
	return wallNS, gcNS, h.Stats.Collections, h.TriggerWords(), nil
}

// tuneCellOf measures reps repetitions of one workload x policy cell.
func tuneCellOf(wl tuneWorkload, autotune bool, reps, ops int) (tuneCell, error) {
	name := "fixed"
	if autotune {
		name = "autotune"
	}
	cell := tuneCell{Policy: name, Reps: reps}
	var thru, gc, colls []int64
	for r := 0; r < reps; r++ {
		wallNS, gcNS, collections, trigger, err := tuneRep(wl, autotune, ops)
		if err != nil {
			return tuneCell{}, err
		}
		mutNS := wallNS - gcNS
		if mutNS <= 0 {
			mutNS = 1
		}
		thru = append(thru, int64(float64(ops)/(float64(mutNS)/1e9)))
		gc = append(gc, gcNS)
		colls = append(colls, int64(collections))
		cell.TriggerWords = trigger
	}
	cell.MutatorOpsPerSec = tuneQuantilesOf(thru)
	cell.GCTotal = quantilesOf(gc)
	cell.CollectionsP50 = quantilesOf(colls).P50
	return cell, nil
}

// runTuneBench runs the ablation and writes the JSON report to path,
// echoing a human-readable summary to out.
func runTuneBench(out io.Writer, path string, reps, ops int) error {
	if reps <= 0 {
		reps = 5
	}
	if ops <= 0 {
		ops = tuneDefaultOps
	}
	fullScale := reps >= 5 && ops >= tuneDefaultOps
	rep := tuneBenchReport{
		Description: "AutoTune (survival-driven gen-0 trigger) vs the fixed default policy " +
			"on trigger-driven gcbench/hashtable/recycle workloads",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Reps:       reps,
		Ops:        ops,
		FullScale:  fullScale,
	}
	fmt.Fprintf(out, "tune-bench: %d reps x %d ops per workload, GOMAXPROCS=%d (full scale: %v)\n",
		reps, ops, rep.GoMaxProcs, fullScale)
	fmt.Fprintf(out, "%-10s  %14s  %14s  %10s  %10s  %8s\n",
		"workload", "fixed ops/s", "tuned ops/s", "gc fixed", "gc tuned", "trigger")
	for _, wl := range tuneWorkloads {
		fixed, err := tuneCellOf(wl, false, reps, ops)
		if err != nil {
			return fmt.Errorf("%s/fixed: %w", wl.name, err)
		}
		tuned, err := tuneCellOf(wl, true, reps, ops)
		if err != nil {
			return fmt.Errorf("%s/autotune: %w", wl.name, err)
		}
		res := tuneWorkloadResult{
			Workload: wl.name,
			Ops:      ops,
			Fixed:    fixed,
			AutoTune: tuned,
		}
		if fixed.MutatorOpsPerSec.P50 > 0 {
			res.ThroughputRatio = float64(tuned.MutatorOpsPerSec.P50) / float64(fixed.MutatorOpsPerSec.P50)
		}
		if fixed.GCTotal.P50 > 0 {
			res.GCTimeRatio = float64(tuned.GCTotal.P50) / float64(fixed.GCTotal.P50)
		}
		res.Improved = res.ThroughputRatio >= 1.0 || (res.GCTimeRatio > 0 && res.GCTimeRatio <= 1.0)
		if res.Improved {
			rep.ImprovedWorkloads++
		}
		if reg := (1 - res.ThroughputRatio) * 100; reg > rep.MaxThroughputRegressionPct {
			rep.MaxThroughputRegressionPct = reg
		}
		rep.Workloads = append(rep.Workloads, res)
		fmt.Fprintf(out, "%-10s  %14d  %14d  %8.1fms  %8.1fms  %8d\n",
			wl.name, fixed.MutatorOpsPerSec.P50, tuned.MutatorOpsPerSec.P50,
			float64(fixed.GCTotal.P50)/1e6, float64(tuned.GCTotal.P50)/1e6,
			tuned.TriggerWords)
	}
	rep.AcceptancePass = rep.ImprovedWorkloads >= 1 && rep.MaxThroughputRegressionPct <= 10
	fmt.Fprintf(out, "tune-bench: %d/%d workloads improved, worst throughput regression %.1f%%, acceptance %v\n",
		rep.ImprovedWorkloads, len(rep.Workloads), rep.MaxThroughputRegressionPct, rep.AcceptancePass)

	var fresh tuneBenchReport
	return writeBenchReport(out, "tune-bench", path, &rep, &fresh, func() error {
		return checkTuneBench(&fresh, reps, ops)
	})
}

// checkTuneBench validates the re-read report for writeBenchReport:
// all three workloads present with positive measurements at the
// requested scale, ratios consistent with their cells, and — at full
// scale only — the headline acceptance claim itself.
func checkTuneBench(rep *tuneBenchReport, reps, ops int) error {
	if rep.Reps != reps || rep.Ops != ops {
		return fmt.Errorf("scale = %dx%d, want %dx%d", rep.Reps, rep.Ops, reps, ops)
	}
	if len(rep.Workloads) != len(tuneWorkloads) {
		return fmt.Errorf("workloads = %d, want %d", len(rep.Workloads), len(tuneWorkloads))
	}
	for _, w := range rep.Workloads {
		if w.Fixed.MutatorOpsPerSec.P50 <= 0 || w.AutoTune.MutatorOpsPerSec.P50 <= 0 {
			return fmt.Errorf("%s: non-positive throughput: %+v / %+v", w.Workload,
				w.Fixed.MutatorOpsPerSec, w.AutoTune.MutatorOpsPerSec)
		}
		if w.Fixed.CollectionsP50 <= 0 || w.AutoTune.CollectionsP50 <= 0 {
			return fmt.Errorf("%s: a cell never collected (fixed %d, tuned %d) — the workload is not trigger-driven",
				w.Workload, w.Fixed.CollectionsP50, w.AutoTune.CollectionsP50)
		}
		if w.AutoTune.TriggerWords <= 0 {
			return fmt.Errorf("%s: autotune trigger_words = %d", w.Workload, w.AutoTune.TriggerWords)
		}
		if w.ThroughputRatio <= 0 {
			return fmt.Errorf("%s: throughput_ratio = %v", w.Workload, w.ThroughputRatio)
		}
	}
	if rep.FullScale && !rep.AcceptancePass {
		return fmt.Errorf("full-scale acceptance failed: %d improved workloads, %.1f%% worst regression",
			rep.ImprovedWorkloads, rep.MaxThroughputRegressionPct)
	}
	return nil
}

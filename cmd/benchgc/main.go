// Command benchgc runs the reproduction experiments and prints their
// tables. Each experiment regenerates one claim or figure of the
// paper; EXPERIMENTS.md records the expected shapes.
//
// Usage:
//
//	benchgc            # run every experiment
//	benchgc -e e4      # run one experiment by id
//	benchgc -list      # list experiment ids
//	benchgc -trace     # run the trace workload; one JSON line per collection
//	benchgc -phases    # run the trace workload; per-phase pause summary
//	benchgc -trace -phases -gcs 100   # both, over 100 collections
//	benchgc -trace -workers 4         # same workload, parallel collector
//	benchgc -trace -pause-budget 1ms  # same workload, deadline-sliced full collections
//	benchgc -parallel-bench           # pause/sweep percentiles per worker count -> BENCH_parallel.json
//	benchgc -pause-bench              # sliced-vs-monolithic pause bound -> BENCH_pause.json
//	benchgc -server-bench             # multi-session server churn -> BENCH_server.json
//	benchgc -fork-bench               # template-clone vs prelude session boot -> BENCH_fork.json
//	benchgc -tune-bench               # AutoTune vs fixed policy ablation -> BENCH_tune.json
//	benchgc -server-bench -out /tmp/s.json   # any bench; -out overrides its default path
//
// See docs/ALGORITHM.md ("Reading benchgc -trace output") for the
// trace record schema.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/experiments"
)

func main() {
	var (
		one     = flag.String("e", "", "run a single experiment by id (e1..e10, a1..a4)")
		list    = flag.Bool("list", false, "list experiments and exit")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		trace   = flag.Bool("trace", false, "run the GC trace workload and emit one JSON line per collection")
		phases  = flag.Bool("phases", false, "run the GC trace workload and print a per-phase pause summary")
		gcs     = flag.Int("gcs", 50, "number of collections for -trace/-phases/-parallel-bench/-pause-bench")
		workers = flag.Int("workers", 1, "collector workers for the -trace/-phases workload (1 = sequential, 0 = adaptive)")
		out     = flag.String("out", "", "output path for the selected -*-bench report (default: that bench's BENCH_*.json)")

		pauseBudget = flag.Duration("pause-budget", 0,
			"PauseBudget for the -trace/-phases workload (0 = monolithic); with -pause-bench, the sliced run's budget (default 1ms)")
		serverSessions = flag.Int("server-sessions", 10000, "standing session population for -server-bench")
		serverChurn    = flag.Int("server-churn", 2000, "register/run/disconnect cycles for -server-bench")
		forkSessions   = flag.Int("fork-sessions", 5000, "sessions per boot mode for -fork-bench")
		tuneReps       = flag.Int("tune-reps", 5, "repetitions per workload x policy cell for -tune-bench")
		tuneOps        = flag.Int("tune-ops", tuneDefaultOps, "per-rep operation count for -tune-bench workloads")
	)
	registerBench("parallel-bench", "BENCH_parallel.json",
		"run the parallel collection baseline across worker counts",
		func(w io.Writer, path string) error { return runParallelBench(w, path, *gcs) })
	registerBench("pause-bench", "BENCH_pause.json",
		"run the pause-budget benchmark (deadline-sliced vs monolithic full collections)",
		func(w io.Writer, path string) error { return runPauseBench(w, path, *gcs, *pauseBudget) })
	registerBench("server-bench", "BENCH_server.json",
		"run the multi-session server benchmark (standing population + churn)",
		func(w io.Writer, path string) error {
			return runServerBench(w, path, *serverSessions, *serverChurn)
		})
	registerBench("fork-bench", "BENCH_fork.json",
		"run the heap-template boot benchmark (template clone vs prelude boot, COW fault cost)",
		func(w io.Writer, path string) error { return runForkBench(w, path, *forkSessions) })
	registerBench("tune-bench", "BENCH_tune.json",
		"run the AutoTune-vs-fixed-policy ablation (gcbench/hashtable/recycle workloads)",
		func(w io.Writer, path string) error { return runTuneBench(w, path, *tuneReps, *tuneOps) })
	flag.Parse()

	if ran, err := dispatchBench(os.Stdout, *out); ran {
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgc: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *trace || *phases {
		h, err := runTraceWorkload(os.Stdout, *gcs, *workers, *pauseBudget, *trace)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgc: %v\n", err)
			os.Exit(1)
		}
		if *phases {
			printPhaseSummary(os.Stdout, h)
		}
		return
	}
	render := func(t experiments.Table) {
		if *csv {
			t.RenderCSV(os.Stdout)
		} else {
			t.Render(os.Stdout)
		}
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Desc)
		}
		return
	}
	if *one != "" {
		e, ok := experiments.Lookup(*one)
		if !ok {
			fmt.Fprintf(os.Stderr, "benchgc: unknown experiment %q (try -list)\n", *one)
			os.Exit(1)
		}
		render(e.Run())
		return
	}
	fmt.Println("Guardians in a Generation-Based Garbage Collector (PLDI 1993)")
	fmt.Println("reproduction experiments (E1–E10, A1–A4); see EXPERIMENTS.md for expected shapes")
	fmt.Println()
	for _, e := range experiments.All() {
		render(e.Run())
	}
}

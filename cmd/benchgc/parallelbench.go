package main

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"

	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/obj"
)

// benchgc -parallel-bench: the baseline for the parallel collection
// mode's bench trajectory. For each worker count it builds the same
// multi-megabyte live heap, runs a fixed number of full collections
// with mutator churn in between, and records pause and sweep-phase
// percentiles. The report is written as JSON (BENCH_parallel.json by
// default) so successive PRs can compare against a stored baseline.
//
// Workers=1 is the sequential collector and serves as the reference:
// its percentiles must stay flat as the parallel code evolves. Speedup
// at higher counts requires actual cores — on a single-CPU host the
// workers serialize and the overhead of CAS forwarding and work
// stealing shows up as a slowdown instead; GOMAXPROCS is recorded in
// the report so readers can tell which regime produced it.

type benchQuantiles struct {
	P50  int64 `json:"p50_ns"`
	P90  int64 `json:"p90_ns"`
	P99  int64 `json:"p99_ns"`
	Max  int64 `json:"max_ns"`
	Mean int64 `json:"mean_ns"`
}

type benchWorkerResult struct {
	// Workers is the configured count (0 = the adaptive policy);
	// WorkersChosen is the count the measured collections actually
	// used, taken from the trace's workers_chosen field (meaningful
	// mainly for the auto row).
	Workers       int `json:"workers"`
	WorkersChosen int `json:"workers_chosen"`
	Collections   int `json:"collections"`
	// GoMaxProcs is sampled when this row is measured (the file-level
	// figure is from report setup; a runtime.GOMAXPROCS call between
	// rows would make them disagree). Degenerate marks a row measured
	// with more workers than schedulable CPUs — its parallel numbers
	// are a serialization artifact, not a speedup baseline.
	GoMaxProcs int            `json:"gomaxprocs"`
	Degenerate bool           `json:"degenerate_baseline,omitempty"`
	Pause      benchQuantiles `json:"pause"`
	Sweep      benchQuantiles `json:"sweep"`
	// DirtyScan covers the remembered-set scan phase (the default
	// configuration); OldScan the conservative full scan, non-zero
	// only when the dirty set is disabled.
	DirtyScan benchQuantiles `json:"dirty_scan"`
	OldScan   benchQuantiles `json:"old_scan"`
	// Guardian covers the protected-list salvage fixpoint (the
	// classification fan-outs; the triggered re-sweeps land in Sweep),
	// and GuardianRounds the per-collection round counts it needed.
	Guardian       benchQuantiles `json:"guardian"`
	GuardianRounds benchQuantiles `json:"guardian_rounds"`
	WordsCopied    uint64         `json:"words_copied_per_gc"`

	// Raw per-collection samples, kept so the report's aggregate can
	// pool real observations instead of averaging quantiles. Unexported:
	// they never reach the JSON.
	rawPause []int64
	rawSweep []int64
}

// benchAggregate summarizes the sweep across worker counts. Rows
// tagged degenerate_baseline (more workers than schedulable CPUs —
// their parallel numbers measure serialization overhead, not speedup)
// are excluded from every aggregate figure: the pooled quantiles use
// only the included rows' raw per-collection samples, and the best-
// speedup figures compare only included rows against the workers=1
// reference.
type benchAggregate struct {
	RowsIncluded           int `json:"rows_included"`
	RowsExcludedDegenerate int `json:"rows_excluded_degenerate"`
	// Pooled per-collection pause/sweep samples over included rows.
	Pause benchQuantiles `json:"pause"`
	Sweep benchQuantiles `json:"sweep"`
	// Best p50 speedup over the workers=1 row among included
	// multi-worker rows (0 when every such row was excluded, e.g. on a
	// GOMAXPROCS=1 host).
	BestPauseSpeedupP50     float64 `json:"best_pause_speedup_p50,omitempty"`
	BestPauseSpeedupWorkers int     `json:"best_pause_speedup_workers,omitempty"`
	BestSweepSpeedupP50     float64 `json:"best_sweep_speedup_p50,omitempty"`
	BestSweepSpeedupWorkers int     `json:"best_sweep_speedup_workers,omitempty"`
}

type benchReport struct {
	Description string              `json:"description"`
	GoMaxProcs  int                 `json:"gomaxprocs"`
	LivePairs   int                 `json:"live_pairs"`
	LiveVectors int                 `json:"live_vectors"`
	Results     []benchWorkerResult `json:"results"`
	Aggregate   benchAggregate      `json:"aggregate"`
}

// aggregateResults builds the cross-row summary from the non-degenerate
// rows. The workers=1 row is the speedup denominator; it is never
// degenerate (one worker cannot exceed GOMAXPROCS), so the aggregate
// always has at least its samples.
func aggregateResults(rows []benchWorkerResult) benchAggregate {
	var agg benchAggregate
	var pause, sweep []int64
	var base *benchWorkerResult
	for i := range rows {
		if rows[i].Workers == 1 {
			base = &rows[i]
		}
	}
	for i := range rows {
		r := &rows[i]
		if r.Degenerate {
			agg.RowsExcludedDegenerate++
			continue
		}
		agg.RowsIncluded++
		pause = append(pause, r.rawPause...)
		sweep = append(sweep, r.rawSweep...)
		if base == nil || r == base {
			continue
		}
		w := r.Workers
		if w == 0 {
			w = r.WorkersChosen // attribute the auto row to its chosen count
		}
		if r.Pause.P50 > 0 && base.Pause.P50 > 0 {
			if s := float64(base.Pause.P50) / float64(r.Pause.P50); s > agg.BestPauseSpeedupP50 {
				agg.BestPauseSpeedupP50, agg.BestPauseSpeedupWorkers = s, w
			}
		}
		if r.Sweep.P50 > 0 && base.Sweep.P50 > 0 {
			if s := float64(base.Sweep.P50) / float64(r.Sweep.P50); s > agg.BestSweepSpeedupP50 {
				agg.BestSweepSpeedupP50, agg.BestSweepSpeedupWorkers = s, w
			}
		}
	}
	agg.Pause = quantilesOf(pause)
	agg.Sweep = quantilesOf(sweep)
	return agg
}

func quantilesOf(ns []int64) benchQuantiles {
	if len(ns) == 0 {
		return benchQuantiles{}
	}
	sorted := append([]int64(nil), ns...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum int64
	for _, v := range sorted {
		sum += v
	}
	at := func(q float64) int64 {
		i := int(q * float64(len(sorted)-1))
		return sorted[i]
	}
	return benchQuantiles{
		P50:  at(0.50),
		P90:  at(0.90),
		P99:  at(0.99),
		Max:  sorted[len(sorted)-1],
		Mean: sum / int64(len(sorted)),
	}
}

// benchOneWorkerCount builds the live heap and runs gcs measured full
// collections at the given worker count.
func benchOneWorkerCount(workers, gcs, pairs, vectors int) (benchWorkerResult, error) {
	cfg := heap.DefaultConfig()
	cfg.Policy = heap.RadixPolicy{Trigger: 1 << 30} // collections are explicit
	cfg.Workers = workers
	h, err := heap.New(cfg)
	if err != nil {
		return benchWorkerResult{}, err
	}

	guard := core.NewGuardian(h)
	defer guard.Release()
	var list obj.Value = obj.Nil
	for i := 0; i < pairs; i++ {
		list = h.Cons(obj.FromFixnum(int64(i)), list)
		if i%8 == 0 {
			list = h.Cons(h.WeakCons(list, obj.Nil), list)
		}
		if i%64 == 0 {
			guard.Register(list) // held: list stays reachable
		}
	}
	for i := 0; i < vectors; i++ {
		v := h.MakeVector(64, obj.Nil)
		h.VectorSet(v, 0, list)
		list = h.Cons(v, list)
	}
	r := h.NewRoot(list)
	defer r.Release()

	var pause, sweep, dirtyScan, oldScan, guardian, rounds []int64
	var words uint64
	var chosen int
	h.SetTraceFunc(func(ev heap.TraceEvent) {
		pause = append(pause, ev.PauseNS)
		sweep = append(sweep, ev.PhaseNS[heap.PhaseSweep])
		dirtyScan = append(dirtyScan, ev.PhaseNS[heap.PhaseDirtyScan])
		oldScan = append(oldScan, ev.PhaseNS[heap.PhaseOldScan])
		guardian = append(guardian, ev.PhaseNS[heap.PhaseGuardian])
		rounds = append(rounds, int64(ev.GuardianRounds))
		words += ev.WordsCopied
		chosen = ev.WorkersChosen
	})
	h.Collect(h.MaxGeneration()) // warm-up: settle survivors
	pause, sweep, dirtyScan, oldScan, guardian, rounds, words = nil, nil, nil, nil, nil, nil, 0
	for i := 0; i < gcs; i++ {
		for j := 0; j < 2000; j++ { // churn between collections
			h.Cons(obj.FromFixnum(int64(j)), obj.Nil)
		}
		// A batch of salvageable registrations so the guardian phase has
		// real fixpoint work every collection, not just held entries.
		for j := 0; j < 64; j++ {
			guard.Register(h.Cons(obj.FromFixnum(int64(j)), obj.Nil))
		}
		h.Collect(h.MaxGeneration())
		for {
			if _, ok := guard.Get(); !ok {
				break
			}
		}
	}
	h.MustVerify()
	procs := runtime.GOMAXPROCS(0)
	res := benchWorkerResult{
		Workers:        workers,
		WorkersChosen:  chosen,
		Collections:    gcs,
		GoMaxProcs:     procs,
		Degenerate:     chosen > procs,
		Pause:          quantilesOf(pause),
		Sweep:          quantilesOf(sweep),
		DirtyScan:      quantilesOf(dirtyScan),
		OldScan:        quantilesOf(oldScan),
		Guardian:       quantilesOf(guardian),
		GuardianRounds: quantilesOf(rounds),
		rawPause:       pause,
		rawSweep:       sweep,
	}
	if gcs > 0 {
		res.WordsCopied = words / uint64(gcs)
	}
	return res, nil
}

// runParallelBench runs the worker-count sweep and writes the JSON
// report to path, echoing a human-readable summary to out.
func runParallelBench(out io.Writer, path string, gcs int) error {
	if gcs <= 0 {
		gcs = 15
	}
	const pairs, vectors = 150_000, 1_000
	rep := benchReport{
		Description: "full-collection pause/sweep percentiles per collector worker count " +
			"on an identical multi-megabyte live heap",
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		LivePairs:   pairs,
		LiveVectors: vectors,
	}
	fmt.Fprintf(out, "parallel collection baseline: %d collections per worker count, GOMAXPROCS=%d\n",
		gcs, rep.GoMaxProcs)
	if rep.GoMaxProcs == 1 {
		// Not a refusal — CI runs this sweep unconditionally on whatever
		// host it gets — but the multi-worker rows must not be mistaken
		// for a parallelism baseline, so say so loudly and tag the rows.
		fmt.Fprintln(os.Stderr, "benchgc: WARNING: GOMAXPROCS=1 — collector workers will serialize;")
		fmt.Fprintln(os.Stderr, "benchgc: WARNING: multi-worker rows measure coordination overhead only")
		fmt.Fprintln(os.Stderr, "benchgc: WARNING: and are tagged \"degenerate_baseline\" in the JSON report")
	}
	fmt.Fprintf(out, "%8s  %12s  %12s  %12s  %12s\n", "workers", "pause p50", "pause p90", "sweep p50", "guard p50")
	// The sweep covers the fixed counts plus the adaptive policy
	// (workers=0), whose row reports the count it actually chose for
	// this heap on this host.
	for _, w := range []int{1, 2, 4, 8, 0} {
		res, err := benchOneWorkerCount(w, gcs, pairs, vectors)
		if err != nil {
			return err
		}
		rep.Results = append(rep.Results, res)
		label := fmt.Sprintf("%d", w)
		if w == 0 {
			label = fmt.Sprintf("auto(%d)", res.WorkersChosen)
		}
		mark := ""
		if res.Degenerate {
			mark = "  (degenerate: workers > GOMAXPROCS)"
		}
		fmt.Fprintf(out, "%8s  %10.3fms  %10.3fms  %10.3fms  %10.3fms%s\n", label,
			float64(res.Pause.P50)/1e6, float64(res.Pause.P90)/1e6,
			float64(res.Sweep.P50)/1e6, float64(res.Guardian.P50)/1e6, mark)
	}
	rep.Aggregate = aggregateResults(rep.Results)
	agg := rep.Aggregate
	fmt.Fprintf(out, "aggregate (non-degenerate rows %d, excluded %d): pause p50 %.3fms p99 %.3fms",
		agg.RowsIncluded, agg.RowsExcludedDegenerate,
		float64(agg.Pause.P50)/1e6, float64(agg.Pause.P99)/1e6)
	if agg.BestSweepSpeedupP50 > 0 {
		fmt.Fprintf(out, ", best sweep speedup %.2fx @ %d workers",
			agg.BestSweepSpeedupP50, agg.BestSweepSpeedupWorkers)
	}
	fmt.Fprintln(out)
	var fresh benchReport
	return writeBenchReport(out, "parallel-bench", path, &rep, &fresh, func() error {
		return checkParallelBench(&fresh, gcs)
	})
}

// checkParallelBench validates the re-read report for
// writeBenchReport: the full worker sweep present with the workers=1
// reference, per-row quantiles ordered, and a non-empty aggregate.
func checkParallelBench(rep *benchReport, gcs int) error {
	if len(rep.Results) != 5 {
		return fmt.Errorf("results rows = %d, want 5", len(rep.Results))
	}
	sawRef := false
	for _, r := range rep.Results {
		if r.Workers == 1 {
			sawRef = true
		}
		if r.Collections != gcs {
			return fmt.Errorf("workers=%d row measured %d collections, want %d", r.Workers, r.Collections, gcs)
		}
		if r.Pause.P50 <= 0 || r.Pause.P99 < r.Pause.P50 || r.Pause.Max < r.Pause.P99 {
			return fmt.Errorf("workers=%d pause quantiles disordered: %+v", r.Workers, r.Pause)
		}
		if r.Sweep.P99 < r.Sweep.P50 {
			return fmt.Errorf("workers=%d sweep quantiles disordered: %+v", r.Workers, r.Sweep)
		}
	}
	if !sawRef {
		return fmt.Errorf("no workers=1 reference row")
	}
	if rep.Aggregate.RowsIncluded < 1 || rep.Aggregate.Pause.P50 <= 0 {
		return fmt.Errorf("aggregate empty: %+v", rep.Aggregate)
	}
	return nil
}

package main

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/obj"
)

// benchgc -pause-bench: the acceptance benchmark for pause-budget
// (deadline-sliced) collections. It runs the identical deterministic
// workload twice — once monolithic (PauseBudget=0, the full
// stop-the-world reference) and once sliced at the requested budget —
// and reports:
//
//   - the monolithic full-collection pause distribution (which must be
//     comfortably above the budget, or the workload proves nothing);
//   - the sliced per-slice pause distribution, its max, and how many
//     slices exceeded budget*slack (the bound the slicer is supposed
//     to enforce);
//   - whether the guardian tconc salvage order was bit-for-bit
//     identical between the two runs (the paper's ordering guarantee
//     must survive slicing).
//
// The report is written as JSON (BENCH_pause.json by default) so the
// repo can carry the measured bound alongside the code that enforces
// it.

type pauseRunStats struct {
	Collections int            `json:"collections"`
	Pause       benchQuantiles `json:"pause"` // full-collection pause (sum of slices when sliced)
	// Sliced-run-only fields.
	SlicePause  benchQuantiles `json:"slice_pause,omitempty"`
	SlicesPerGC benchQuantiles `json:"slices_per_gc,omitempty"`
	MaxSliceNS  int64          `json:"max_slice_ns,omitempty"`
	// Violations counts slices whose pause exceeded budget*slack.
	Violations int `json:"violations"`
}

type pauseBenchReport struct {
	Description string  `json:"description"`
	GoMaxProcs  int     `json:"gomaxprocs"`
	LivePairs   int     `json:"live_pairs"`
	BudgetNS    int64   `json:"budget_ns"`
	SlackRatio  float64 `json:"slack_ratio"`
	// BudgetHolds is the headline claim: every slice of the sliced run
	// stayed within budget*slack.
	BudgetHolds bool          `json:"budget_holds"`
	Monolithic  pauseRunStats `json:"monolithic"`
	Sliced      pauseRunStats `json:"sliced"`
	// TconcOrderIdentical reports whether the guardian salvage tconc
	// order of the sliced run matched the monolithic run exactly, over
	// TconcSalvaged total salvaged representatives.
	TconcOrderIdentical bool `json:"tconc_order_identical"`
	TconcSalvaged       int  `json:"tconc_salvaged"`
}

// runPauseWorkload builds a multi-megabyte tenured heap and runs gcs
// full collections with churn and salvageable guardian registrations
// between them. The allocation and registration sequence is fully
// deterministic, so two runs differing only in PauseBudget must
// salvage the same representatives in the same order. It returns the
// per-collection pauses, the per-slice pauses (empty when budget==0),
// per-collection slice counts, and the salvage order history.
func runPauseWorkload(budget time.Duration, gcs, pairs int) (pause, slicePause, slicesPerGC []int64, order []int64, err error) {
	cfg := heap.DefaultConfig()
	cfg.Policy = heap.RadixPolicy{Trigger: 1 << 30} // collections are explicit
	cfg.PauseBudget = budget
	h, err := heap.New(cfg)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	guard := core.NewGuardian(h)
	defer guard.Release()
	// The live structure is deliberately sweep-dominated: copying it is
	// the work the slicer can bound, while the guardian classification
	// and weak-pair scan are pinned to the final slice (the paper's
	// ordering) and therefore must stay small relative to the budget.
	// Weak pairs at 1/64 and held registrations at 1/1024 keep those
	// phases in the tens of microseconds; the salvage burst below still
	// exercises the ordering guarantee every collection.
	var list obj.Value = obj.Nil
	for i := 0; i < pairs; i++ {
		list = h.Cons(obj.FromFixnum(int64(i)), list)
		if i%64 == 0 {
			list = h.Cons(h.WeakCons(list, obj.Nil), list)
		}
		if i%1024 == 0 {
			guard.Register(list) // held: list stays reachable
		}
	}
	r := h.NewRoot(list)
	defer r.Release()

	h.SetTraceFunc(func(ev heap.TraceEvent) {
		pause = append(pause, ev.PauseNS)
		slicesPerGC = append(slicesPerGC, int64(len(ev.Slices)))
		for _, s := range ev.Slices {
			slicePause = append(slicePause, s.PauseNS)
		}
	})
	h.Collect(h.MaxGeneration()) // warm-up: settle survivors into old space
	pause, slicePause, slicesPerGC = nil, nil, nil
	for i := 0; i < gcs; i++ {
		for j := 0; j < 2000; j++ { // churn between collections
			h.Cons(obj.FromFixnum(int64(j)), obj.Nil)
		}
		// Salvageable registrations with collection-unique IDs: their
		// tconc append order is the cross-run determinism witness.
		for j := 0; j < 64; j++ {
			guard.Register(h.Cons(obj.FromFixnum(int64(i*1000+j)), obj.Nil))
		}
		h.Collect(h.MaxGeneration())
		for {
			v, ok := guard.Get()
			if !ok {
				break
			}
			order = append(order, h.Car(v).FixnumValue())
		}
	}
	h.MustVerify()
	return pause, slicePause, slicesPerGC, order, nil
}

// runPauseBench runs the monolithic/sliced comparison and writes the
// JSON report to path, echoing a human-readable summary to out.
func runPauseBench(out io.Writer, path string, gcs int, budget time.Duration) error {
	if gcs <= 0 {
		gcs = 15
	}
	if budget <= 0 {
		budget = time.Millisecond
	}
	const pairs = 400_000
	const slack = 1.20

	fmt.Fprintf(out, "pause-budget benchmark: %d collections, %d live pairs, budget %v, GOMAXPROCS=%d\n",
		gcs, pairs, budget, runtime.GOMAXPROCS(0))

	stwPause, _, _, stwOrder, err := runPauseWorkload(0, gcs, pairs)
	if err != nil {
		return err
	}
	slPause, slSlices, slPerGC, slOrder, err := runPauseWorkload(budget, gcs, pairs)
	if err != nil {
		return err
	}

	limit := int64(float64(budget.Nanoseconds()) * slack)
	violations := 0
	var maxSlice int64
	for _, ns := range slSlices {
		if ns > maxSlice {
			maxSlice = ns
		}
		if ns > limit {
			violations++
		}
	}
	sameOrder := len(stwOrder) == len(slOrder)
	if sameOrder {
		for i := range stwOrder {
			if stwOrder[i] != slOrder[i] {
				sameOrder = false
				break
			}
		}
	}

	rep := pauseBenchReport{
		Description: "deadline-sliced full collections (PauseBudget) vs the monolithic " +
			"stop-the-world reference on an identical deterministic workload",
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		LivePairs:   pairs,
		BudgetNS:    budget.Nanoseconds(),
		SlackRatio:  slack,
		BudgetHolds: violations == 0,
		Monolithic: pauseRunStats{
			Collections: gcs,
			Pause:       quantilesOf(stwPause),
		},
		Sliced: pauseRunStats{
			Collections: gcs,
			Pause:       quantilesOf(slPause),
			SlicePause:  quantilesOf(slSlices),
			SlicesPerGC: quantilesOf(slPerGC),
			MaxSliceNS:  maxSlice,
			Violations:  violations,
		},
		TconcOrderIdentical: sameOrder,
		TconcSalvaged:       len(stwOrder),
	}

	fmt.Fprintf(out, "monolithic pause: p50 %.3fms  p99 %.3fms  max %.3fms\n",
		float64(rep.Monolithic.Pause.P50)/1e6, float64(rep.Monolithic.Pause.P99)/1e6,
		float64(rep.Monolithic.Pause.Max)/1e6)
	fmt.Fprintf(out, "sliced slice pause: p50 %.3fms  p99 %.3fms  max %.3fms  (%d slices, %.0f/gc median)\n",
		float64(rep.Sliced.SlicePause.P50)/1e6, float64(rep.Sliced.SlicePause.P99)/1e6,
		float64(maxSlice)/1e6, len(slSlices), float64(rep.Sliced.SlicesPerGC.P50))
	fmt.Fprintf(out, "budget %v x %.2f slack = %.3fms limit: %d violations; tconc order identical: %v (%d salvaged)\n",
		budget, slack, float64(limit)/1e6, violations, sameOrder, len(stwOrder))
	if rep.Monolithic.Pause.P50 < 5*budget.Nanoseconds() {
		fmt.Fprintln(os.Stderr, "benchgc: WARNING: monolithic pause is under 5x the budget —")
		fmt.Fprintln(os.Stderr, "benchgc: WARNING: the workload barely exercises slicing on this host")
	}
	if !sameOrder {
		fmt.Fprintln(os.Stderr, "benchgc: ERROR: sliced run changed the guardian tconc order")
	}

	var fresh pauseBenchReport
	if err := writeBenchReport(out, "pause-bench", path, &rep, &fresh, func() error {
		return checkPauseBench(&fresh, gcs)
	}); err != nil {
		return err
	}
	if !sameOrder {
		return fmt.Errorf("tconc order diverged between monolithic and sliced runs")
	}
	return nil
}

// checkPauseBench validates the re-read report for writeBenchReport:
// both runs measured at the requested scale, quantiles ordered, the
// sliced run actually sliced, and the determinism witness non-empty.
func checkPauseBench(rep *pauseBenchReport, gcs int) error {
	switch {
	case rep.BudgetNS <= 0:
		return fmt.Errorf("budget_ns = %d", rep.BudgetNS)
	case rep.Monolithic.Collections != gcs || rep.Sliced.Collections != gcs:
		return fmt.Errorf("collections = %d/%d, want %d", rep.Monolithic.Collections, rep.Sliced.Collections, gcs)
	case rep.Monolithic.Pause.P50 <= 0 || rep.Monolithic.Pause.P99 < rep.Monolithic.Pause.P50:
		return fmt.Errorf("monolithic pause quantiles disordered: %+v", rep.Monolithic.Pause)
	case rep.Sliced.SlicePause.Max <= 0 || rep.Sliced.SlicePause.P99 < rep.Sliced.SlicePause.P50:
		return fmt.Errorf("slice pause quantiles disordered: %+v", rep.Sliced.SlicePause)
	case rep.Sliced.MaxSliceNS < rep.Sliced.SlicePause.P99:
		return fmt.Errorf("max_slice_ns %d below slice p99 %d", rep.Sliced.MaxSliceNS, rep.Sliced.SlicePause.P99)
	case rep.TconcSalvaged <= 0:
		return fmt.Errorf("tconc_salvaged = %d", rep.TconcSalvaged)
	case rep.BudgetHolds != (rep.Sliced.Violations == 0):
		return fmt.Errorf("budget_holds = %v with %d violations", rep.BudgetHolds, rep.Sliced.Violations)
	}
	return nil
}

package main

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/heap"
	"repro/internal/obj"
	"repro/internal/scheme"
	"repro/internal/server"
)

// benchgc -fork-bench: the heap-template boot benchmark. It measures
// the fork economics the copy-on-write templates exist for:
//
//  1. Boot rate: register -fork-sessions sessions against a server
//     pinned to prelude boot (every session re-evaluates the prelude
//     into a fresh heap) and against the default template-boot server
//     (every session clones the process-wide prelude template). The
//     headline figure is the sessions/sec ratio.
//  2. COW fault cost: clone a prelude-sized machine template many
//     times and time, per clone, the first write into a shared
//     segment (pays the segment privatization copy) and a second
//     write to the now-private segment (pays nothing), reported as
//     latency quantiles.
//  3. Churn: register/run/disconnect cycles where every session boots
//     from the template, asserting zero leaked ports and resources —
//     the disconnect-reclaim guarantee is boot-path independent.
//
// The report is written as JSON (BENCH_fork.json by default) and
// schema-checked before the process exits 0, so CI can gate on it.

type forkBootStats struct {
	Sessions       int     `json:"sessions"`
	Seconds        float64 `json:"seconds"`
	SessionsPerSec float64 `json:"sessions_per_sec"`
	TemplateBoots  uint64  `json:"template_boots"`
	PreludeBoots   uint64  `json:"prelude_boots"`
}

type forkCOWStats struct {
	Clones int `json:"clones"`
	// SharedSegments is the number of segments each clone begins by
	// sharing with the template — the upper bound on COW faults.
	SharedSegments int `json:"shared_segments_per_clone"`
	// FirstWrite times the store that privatizes a shared segment;
	// PrivateWrite the immediately following store to the same (now
	// private) segment. The gap between the two is the fault cost.
	FirstWrite   benchQuantiles `json:"first_write"`
	PrivateWrite benchQuantiles `json:"private_write"`
	// CloneBoot times heap.CloneFromTemplate + machine Attach alone —
	// the microsecond-boot claim, without server bookkeeping.
	CloneBoot benchQuantiles `json:"clone_boot"`
}

type forkChurnStats struct {
	Cycles          int     `json:"cycles"`
	Seconds         float64 `json:"seconds"`
	SessionsPerSec  float64 `json:"sessions_per_sec"`
	TemplateBoots   uint64  `json:"template_boots"`
	LeakedPorts     int     `json:"leaked_ports"`
	LeakedResources int     `json:"leaked_resources"`
}

type forkBenchReport struct {
	Description  string        `json:"description"`
	GoMaxProcs   int           `json:"gomaxprocs"`
	TemplateBoot forkBootStats `json:"template_boot"`
	PreludeBoot  forkBootStats `json:"prelude_boot"`
	// Speedup is the headline: template-boot sessions/sec over
	// prelude-boot sessions/sec.
	Speedup float64        `json:"speedup"`
	COW     forkCOWStats   `json:"cow"`
	Churn   forkChurnStats `json:"churn"`
}

// forkBootPhase registers n sessions with an empty init script — the
// measured quantity is session boot itself, not a workload both boot
// paths would run identically — against a server in the given boot
// mode, waits for quiescence, checks zero leaks on drain, and returns
// the stats.
func forkBootPhase(preludeBoot bool, n int) (forkBootStats, error) {
	nExec := runtime.GOMAXPROCS(0)
	if nExec > 4 {
		nExec = 4
	}
	srv := server.New(server.Config{Executors: nExec, GCWorkers: 2, PreludeBoot: preludeBoot})
	srv.Start()
	defer srv.Close()

	start := time.Now()
	ids := make([]server.SessionID, 0, n)
	for i := 0; i < n; i++ {
		id, err := srv.Register("")
		if err != nil {
			return forkBootStats{}, fmt.Errorf("register %d: %w", i, err)
		}
		ids = append(ids, id)
	}
	if !srv.WaitIdle(10 * time.Minute) {
		return forkBootStats{}, fmt.Errorf("boot did not quiesce")
	}
	sec := time.Since(start).Seconds()
	st := srv.Stats()
	if st.Live != n {
		return forkBootStats{}, fmt.Errorf("%d live sessions, want %d", st.Live, n)
	}
	for _, id := range ids {
		if err := srv.Disconnect(id); err != nil {
			return forkBootStats{}, fmt.Errorf("disconnect %d: %w", id, err)
		}
	}
	if !srv.WaitIdle(10 * time.Minute) {
		return forkBootStats{}, fmt.Errorf("drain did not quiesce")
	}
	st = srv.Stats()
	if st.LeakedPorts != 0 || st.LeakedRes != 0 {
		return forkBootStats{}, fmt.Errorf("leaks: ports=%d resources=%d", st.LeakedPorts, st.LeakedRes)
	}
	return forkBootStats{
		Sessions:       n,
		Seconds:        sec,
		SessionsPerSec: float64(n) / sec,
		TemplateBoots:  st.TemplateBoots,
		PreludeBoots:   st.PreludeBoots,
	}, nil
}

// forkCOWPhase captures one prelude-loaded machine template and clones
// it repeatedly, timing per clone the bare boot (Clone + Attach), the
// first write into a shared segment, and a second write to the same
// segment once private.
func forkCOWPhase(clones int) (forkCOWStats, error) {
	donor := scheme.New(heap.NewDefault(), nil)
	// A rooted pair the timed writes target; placed before capture so
	// every clone inherits it inside a shared (template) segment.
	target := donor.H.NewRoot(donor.H.Cons(obj.FromFixnum(0), obj.Nil))
	tpl, err := scheme.CaptureTemplate(donor)
	if err != nil {
		return forkCOWStats{}, err
	}
	_ = target

	st := forkCOWStats{Clones: clones}
	boot := make([]int64, 0, clones)
	first := make([]int64, 0, clones)
	private := make([]int64, 0, clones)
	for i := 0; i < clones; i++ {
		t0 := time.Now()
		h, roots, err := tpl.Clone()
		if err != nil {
			return forkCOWStats{}, fmt.Errorf("clone %d: %w", i, err)
		}
		m := tpl.Attach(h, nil)
		boot = append(boot, time.Since(t0).Nanoseconds())
		if i == 0 {
			st.SharedSegments = h.SharedSegments()
		}
		// Find the target pair among the inherited roots (the machine's
		// own slots precede it): the strong pair holding fixnum 0.
		var pair obj.Value
		found := false
		for _, r := range roots {
			if r == nil {
				continue
			}
			if v := r.Get(); v.IsPair() && !h.IsWeakPair(v) && h.Car(v).IsFixnum() && h.Car(v).FixnumValue() == 0 {
				pair, found = v, true
				break
			}
		}
		if !found {
			return forkCOWStats{}, fmt.Errorf("clone %d: target pair not among inherited roots", i)
		}
		t0 = time.Now()
		h.SetCar(pair, obj.FromFixnum(int64(i)))
		first = append(first, time.Since(t0).Nanoseconds())
		if h.COWCopies() == 0 {
			return forkCOWStats{}, fmt.Errorf("clone %d: first write took no COW fault", i)
		}
		t0 = time.Now()
		h.SetCar(pair, obj.FromFixnum(int64(i+1)))
		private = append(private, time.Since(t0).Nanoseconds())
		_ = m
	}
	st.CloneBoot = quantilesOf(boot)
	st.FirstWrite = quantilesOf(first)
	st.PrivateWrite = quantilesOf(private)
	return st, nil
}

// forkChurnPhase runs register/run/disconnect cycles on a
// template-booting server and checks that the guardian reclaim path
// stays leak-free when every session is a clone.
func forkChurnPhase(cycles int) (forkChurnStats, error) {
	srv := server.New(server.Config{Executors: 2, GCWorkers: 2})
	srv.Start()
	defer srv.Close()
	start := time.Now()
	for i := 0; i < cycles; i++ {
		id, err := srv.Register(sessionWorkload)
		if err != nil {
			return forkChurnStats{}, fmt.Errorf("cycle %d: %w", i, err)
		}
		if err := srv.Disconnect(id); err != nil {
			return forkChurnStats{}, fmt.Errorf("cycle %d: %w", i, err)
		}
	}
	if !srv.WaitIdle(10 * time.Minute) {
		return forkChurnStats{}, fmt.Errorf("churn did not quiesce")
	}
	sec := time.Since(start).Seconds()
	st := srv.Stats()
	if st.Reclaimed != uint64(cycles) {
		return forkChurnStats{}, fmt.Errorf("reclaimed %d, want %d", st.Reclaimed, cycles)
	}
	return forkChurnStats{
		Cycles:          cycles,
		Seconds:         sec,
		SessionsPerSec:  float64(cycles) / sec,
		TemplateBoots:   st.TemplateBoots,
		LeakedPorts:     int(st.LeakedPorts),
		LeakedResources: int(st.LeakedRes),
	}, nil
}

func runForkBench(w io.Writer, outPath string, sessions int) error {
	rep := forkBenchReport{
		Description: "copy-on-write heap-template session boot vs prelude boot, COW fault cost, template churn",
		GoMaxProcs:  runtime.GOMAXPROCS(0),
	}
	var err error

	fmt.Fprintf(w, "fork-bench: booting %d sessions from the prelude...\n", sessions)
	if rep.PreludeBoot, err = forkBootPhase(true, sessions); err != nil {
		return fmt.Errorf("prelude boot: %w", err)
	}
	fmt.Fprintf(w, "fork-bench: prelude boot %.0f sessions/sec\n", rep.PreludeBoot.SessionsPerSec)

	fmt.Fprintf(w, "fork-bench: booting %d sessions from the template...\n", sessions)
	if rep.TemplateBoot, err = forkBootPhase(false, sessions); err != nil {
		return fmt.Errorf("template boot: %w", err)
	}
	rep.Speedup = rep.TemplateBoot.SessionsPerSec / rep.PreludeBoot.SessionsPerSec
	fmt.Fprintf(w, "fork-bench: template boot %.0f sessions/sec (%.1fx prelude boot)\n",
		rep.TemplateBoot.SessionsPerSec, rep.Speedup)

	clones := sessions
	if clones > 2000 {
		clones = 2000
	}
	fmt.Fprintf(w, "fork-bench: timing COW faults over %d clones...\n", clones)
	if rep.COW, err = forkCOWPhase(clones); err != nil {
		return fmt.Errorf("cow phase: %w", err)
	}
	fmt.Fprintf(w, "fork-bench: clone boot p50 %v, first write p50 %v (p99 %v), private write p50 %v\n",
		time.Duration(rep.COW.CloneBoot.P50), time.Duration(rep.COW.FirstWrite.P50),
		time.Duration(rep.COW.FirstWrite.P99), time.Duration(rep.COW.PrivateWrite.P50))

	churn := sessions / 2
	if churn < 50 {
		churn = 50
	}
	fmt.Fprintf(w, "fork-bench: churning %d template-boot cycles...\n", churn)
	if rep.Churn, err = forkChurnPhase(churn); err != nil {
		return fmt.Errorf("churn phase: %w", err)
	}
	fmt.Fprintf(w, "fork-bench: churn %.0f sessions/sec, leaks ports=%d resources=%d\n",
		rep.Churn.SessionsPerSec, rep.Churn.LeakedPorts, rep.Churn.LeakedResources)

	var fresh forkBenchReport
	return writeBenchReport(w, "fork-bench", outPath, &rep, &fresh, func() error {
		return checkForkBench(&fresh, sessions)
	})
}

// checkForkBench validates the re-read report for writeBenchReport:
// both boot modes measured at the requested scale with the expected
// boot-path counters, a real (>= 3x) speedup, COW quantiles present
// and ordered, and a leak-free churn phase. (The committed full-scale
// run clears 5x with a wide margin; the reduced-scale CI smoke keeps a
// noise allowance.)
func checkForkBench(rep *forkBenchReport, sessions int) error {
	switch {
	case rep.TemplateBoot.Sessions != sessions || rep.PreludeBoot.Sessions != sessions:
		return fmt.Errorf("sessions = %d/%d, want %d", rep.TemplateBoot.Sessions, rep.PreludeBoot.Sessions, sessions)
	case rep.TemplateBoot.TemplateBoots != uint64(sessions):
		return fmt.Errorf("template_boots = %d, want %d (prelude fallbacks: %d)",
			rep.TemplateBoot.TemplateBoots, sessions, rep.TemplateBoot.PreludeBoots)
	case rep.PreludeBoot.PreludeBoots != uint64(sessions) || rep.PreludeBoot.TemplateBoots != 0:
		return fmt.Errorf("prelude-boot server booted %d/%d prelude/template, want %d/0",
			rep.PreludeBoot.PreludeBoots, rep.PreludeBoot.TemplateBoots, sessions)
	case rep.Speedup < 3:
		return fmt.Errorf("template boot speedup %.2fx, want >= 3x", rep.Speedup)
	case rep.COW.Clones <= 0 || rep.COW.SharedSegments <= 0:
		return fmt.Errorf("cow phase empty: %+v", rep.COW)
	case rep.COW.FirstWrite.P99 < rep.COW.FirstWrite.P50 || rep.COW.FirstWrite.Max <= 0:
		return fmt.Errorf("first-write quantiles disordered: %+v", rep.COW.FirstWrite)
	case rep.COW.PrivateWrite.Max <= 0 || rep.COW.CloneBoot.Max <= 0:
		return fmt.Errorf("cow quantiles missing: %+v", rep.COW)
	case rep.Churn.Cycles <= 0 || rep.Churn.TemplateBoots != uint64(rep.Churn.Cycles):
		return fmt.Errorf("churn booted %d templates over %d cycles", rep.Churn.TemplateBoots, rep.Churn.Cycles)
	case rep.Churn.LeakedPorts != 0 || rep.Churn.LeakedResources != 0:
		return fmt.Errorf("churn leaks: ports=%d resources=%d", rep.Churn.LeakedPorts, rep.Churn.LeakedResources)
	}
	return nil
}

package main

import "testing"

func TestBalanced(t *testing.T) {
	cases := map[string]bool{
		"":                        true,
		"(+ 1 2)":                 true,
		"(define (f x)\n":         false,
		"(define (f x)\n  x)":     true,
		"\"open string":           false,
		"\"closed\"":              true,
		"(display \"a)b\")":       true,
		"; comment with ( only":   true,
		"(f ; trailing ( comment": false,
		"[let ([x 1]) x]":         true,
		"(a (b (c)))":             true,
		"(a (b (c))":              false,
		")extra":                  true, // depth <= 0: let the reader report it
		"\"esc \\\" quote\"":      true,
	}
	for src, want := range cases {
		if got := balanced(src); got != want {
			t.Errorf("balanced(%q) = %v, want %v", src, got, want)
		}
	}
}

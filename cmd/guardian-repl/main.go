// Command guardian-repl is an interactive Scheme read-eval-print loop
// over the simulated generation-based heap. The guardian machinery of
// the paper is available exactly as published: make-guardian,
// make-transport-guardian, make-guarded-hash-table, weak-cons,
// collect, collect-request-handler, and the guarded file operations
// (against an in-memory file system).
//
// Try the paper's session:
//
//	> (define G (make-guardian))
//	> (define x (cons 'a 'b))
//	> (G x)
//	> (G)
//	#f
//	> (set! x #f)
//	> (collect 1)
//	> (G)
//	(a . b)
//
// Usage:
//
//	guardian-repl            # interactive
//	guardian-repl file.scm   # run a file, then exit
//	guardian-repl -stats ... # print collector statistics at exit
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/heap"
	"repro/internal/scheme"
)

func main() {
	var (
		stats       = flag.Bool("stats", false, "print collector statistics at exit")
		generations = flag.Int("generations", 4, "number of heap generations")
		trigger     = flag.Int("trigger", 64*512, "gen-0 words between collect requests")
		autotune    = flag.Bool("autotune", false, "self-tune the gen-0 trigger from measured survival")
		compiled    = flag.Bool("compile", false, "execute via the bytecode compiler and VM")
		loadImage   = flag.String("load-image", "", "restore a machine image saved with -save-image")
		saveImage   = flag.String("save-image", "", "write a machine image at exit (interpreted sessions only)")
	)
	flag.Parse()

	cfg := heap.DefaultConfig()
	cfg.Generations = *generations
	if *autotune {
		cfg.AutoTune = true
		cfg.TriggerWords = *trigger // AdaptivePolicy's starting trigger
	} else {
		cfg.Policy = heap.RadixPolicy{Trigger: *trigger}
	}
	var h *heap.Heap
	var m *scheme.Machine
	if *loadImage != "" {
		f, err := os.Open(*loadImage)
		if err != nil {
			fmt.Fprintf(os.Stderr, "guardian-repl: %v\n", err)
			os.Exit(1)
		}
		m, err = scheme.LoadMachineImage(f, nil)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "guardian-repl: %v\n", err)
			os.Exit(1)
		}
		h = m.H
	} else {
		var err error
		h, err = heap.New(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "guardian-repl: %v\n", err)
			os.Exit(1)
		}
		m = scheme.New(h, nil)
	}
	m.Out = os.Stdout
	writeImage := func() {
		if *saveImage == "" {
			return
		}
		f, err := os.Create(*saveImage)
		if err == nil {
			err = m.SaveImage(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "guardian-repl: save-image: %v\n", err)
		}
	}
	defer writeImage()
	eval := m.EvalString
	if *compiled {
		eval = m.EvalStringCompiled
	}

	if flag.NArg() > 0 {
		src, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "guardian-repl: %v\n", err)
			os.Exit(1)
		}
		if _, err := eval(string(src)); err != nil {
			var exitErr *scheme.ExitError
			if errors.As(err, &exitErr) {
				writeImage()
				os.Exit(exitErr.Code)
			}
			fmt.Fprintf(os.Stderr, "guardian-repl: %v\n", err)
			os.Exit(1)
		}
		if *stats {
			fmt.Fprintln(os.Stderr, h.Stats.String())
		}
		return
	}

	fmt.Println("guardians in a generation-based garbage collector — PLDI 1993 reproduction")
	fmt.Printf("%d generations, %d-word gen-0 trigger (%s policy); (collect [g]) collects explicitly\n",
		cfg.Generations, h.TriggerWords(), h.Policy().Name())
	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	var pending strings.Builder
	for {
		if pending.Len() == 0 {
			fmt.Print("> ")
		} else {
			fmt.Print("  ")
		}
		if !in.Scan() {
			break
		}
		pending.WriteString(in.Text())
		pending.WriteByte('\n')
		src := pending.String()
		if !balanced(src) {
			continue
		}
		pending.Reset()
		if strings.TrimSpace(src) == "" {
			continue
		}
		v, err := eval(src)
		if err != nil {
			var exitErr *scheme.ExitError
			if errors.As(err, &exitErr) {
				writeImage()
				if *stats {
					fmt.Fprintln(os.Stderr, h.Stats.String())
				}
				os.Exit(exitErr.Code)
			}
			fmt.Println(err)
			continue
		}
		if s := m.WriteString(v); s != "#<void>" {
			fmt.Println(s)
		}
	}
	if *stats {
		fmt.Fprintln(os.Stderr, h.Stats.String())
	}
}

// balanced reports whether src has no unclosed parens or strings, so
// multi-line forms can be typed naturally.
func balanced(src string) bool {
	depth := 0
	inStr := false
	for i := 0; i < len(src); i++ {
		c := src[i]
		switch {
		case inStr:
			if c == '\\' {
				i++
			} else if c == '"' {
				inStr = false
			}
		case c == '"':
			inStr = true
		case c == ';':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '(' || c == '[':
			depth++
		case c == ')' || c == ']':
			depth--
		}
	}
	return depth <= 0 && !inStr
}

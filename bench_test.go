// Package repro_test benchmarks every experiment of the reproduction
// (one benchmark family per claim/figure in the paper; see DESIGN.md's
// experiment index and EXPERIMENTS.md for recorded results), plus
// micro-benchmarks of the collector primitives themselves.
//
// Run with:
//
//	go test -bench=. -benchmem
package repro_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/obj"
	"repro/internal/ports"
	"repro/internal/recycle"
	"repro/internal/scheme"
)

func fx(n int64) obj.Value { return obj.FromFixnum(n) }

func churn(h *heap.Heap, pairs int) {
	for i := 0; i < pairs; i++ {
		h.Cons(fx(int64(i)), obj.Nil)
	}
}

// --- E1: collector overhead proportional to work done -------------------

// BenchmarkE1GenerationFriendly times a generation-0 collection with N
// objects registered with a guardian and tenured to the oldest
// generation. The paper's claim is that the time is independent of N.
func BenchmarkE1GenerationFriendly(b *testing.B) {
	for _, N := range []int{0, 1000, 10000, 100000} {
		b.Run(fmt.Sprintf("tenured=%d", N), func(b *testing.B) {
			h := heap.NewDefault()
			g := core.NewGuardian(h)
			lst := h.NewRoot(obj.Nil)
			for i := 0; i < N; i++ {
				p := h.Cons(fx(int64(i)), obj.Nil)
				lst.Set(h.Cons(p, lst.Get()))
				g.Register(p)
			}
			for i := 0; i < 3; i++ {
				h.Collect(h.MaxGeneration())
			}
			h.Stats.Reset()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				churn(h, 1000)
				h.Collect(0)
			}
			b.StopTimer()
			b.ReportMetric(float64(h.Stats.GuardianEntriesScanned)/float64(b.N),
				"guardian-entries/gc")
		})
	}
}

// BenchmarkE1WeakListBaseline is the same setting for the weak-list
// mechanism: each scan traverses all N entries.
func BenchmarkE1WeakListBaseline(b *testing.B) {
	for _, N := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("tenured=%d", N), func(b *testing.B) {
			h := heap.NewDefault()
			w := baseline.NewWeakListFinalizer(h)
			lst := h.NewRoot(obj.Nil)
			for i := 0; i < N; i++ {
				p := h.Cons(fx(int64(i)), obj.Nil)
				lst.Set(h.Cons(p, lst.Get()))
				w.Watch(p)
			}
			h.Collect(h.MaxGeneration())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.Scan(func(obj.Value) {})
			}
			b.StopTimer()
			b.ReportMetric(float64(w.CellsScanned)/float64(b.N), "cells/scan")
		})
	}
}

// --- E2: mutator overhead proportional to clean-ups performed ------------

// BenchmarkE2MutatorProportional measures one guarded-table cleanup
// round: drop `drop` keys out of a 2048-entry table, collect, access.
// The whole cycle (build, drop, collect, cleanup) is inside measured
// time so b.N stays sane; the figure of interest — the cleanup access
// alone — is reported as the cleanup-ns metric, which tracks the drop
// count while the weak-list baseline would stay flat at table size.
func BenchmarkE2MutatorProportional(b *testing.B) {
	const K = 2048
	hash := func(h *heap.Heap, key obj.Value) uint64 {
		return uint64(h.Car(key).FixnumValue())
	}
	for _, drop := range []int{0, 16, 256, 1024} {
		b.Run(fmt.Sprintf("drop=%d", drop), func(b *testing.B) {
			h := heap.NewDefault()
			tbl := core.NewGuardedTable(h, 1024, hash)
			probe := h.NewRoot(h.Cons(fx(-1), obj.Nil))
			tbl.Access(probe.Get(), fx(0))
			var cleanupNS int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				roots := make([]*heap.Root, K)
				for j := 0; j < K; j++ {
					key := h.Cons(fx(int64(j)), obj.Nil)
					roots[j] = h.NewRoot(key)
					tbl.Access(key, fx(int64(j)))
				}
				for j := 0; j < drop; j++ {
					roots[j].Release()
				}
				h.Collect(h.MaxGeneration())
				t0 := time.Now()
				tbl.Access(probe.Get(), fx(0)) // pays only for the drops
				cleanupNS += time.Since(t0).Nanoseconds()
				for j := drop; j < K; j++ {
					roots[j].Release()
				}
				h.Collect(h.MaxGeneration())
				tbl.Access(probe.Get(), fx(0))
			}
			b.StopTimer()
			b.ReportMetric(float64(cleanupNS)/float64(b.N), "cleanup-ns")
		})
	}
}

// --- E3: guarded hash table (Figure 1) -----------------------------------

// BenchmarkE3GuardedHashTable measures steady-state access cost of the
// guarded and unguarded tables (the guarded table's cleanup check on a
// quiet guardian is a single pointer comparison).
func BenchmarkE3GuardedHashTable(b *testing.B) {
	hash := func(h *heap.Heap, key obj.Value) uint64 {
		return uint64(h.Car(key).FixnumValue())
	}
	const K = 1024
	b.Run("guarded", func(b *testing.B) {
		h := heap.NewDefault()
		tbl := core.NewGuardedTable(h, 512, hash)
		keys := make([]*heap.Root, K)
		for i := 0; i < K; i++ {
			keys[i] = h.NewRoot(h.Cons(fx(int64(i)), obj.Nil))
			tbl.Access(keys[i].Get(), fx(int64(i)))
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tbl.Access(keys[i%K].Get(), fx(0))
		}
	})
	b.Run("unguarded", func(b *testing.B) {
		h := heap.NewDefault()
		tbl := core.NewUnguardedTable(h, 512, hash)
		keys := make([]*heap.Root, K)
		for i := 0; i < K; i++ {
			keys[i] = h.NewRoot(h.Cons(fx(int64(i)), obj.Nil))
			tbl.Access(keys[i].Get(), fx(int64(i)))
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tbl.Access(keys[i%K].Get(), fx(0))
		}
	})
}

// --- E4: transport-guardian rehashing -------------------------------------

// BenchmarkE4TransportRehash measures one young-collection round
// (churn, collect, lookup) against an eq table with tenured keys.
func BenchmarkE4TransportRehash(b *testing.B) {
	const K = 5000
	for _, mode := range []core.RehashMode{core.RehashAll, core.RehashTransport} {
		name := "rehash-all"
		if mode == core.RehashTransport {
			name = "transport"
		}
		b.Run(name, func(b *testing.B) {
			h := heap.NewDefault()
			tbl := core.NewEqTable(h, 4096, mode)
			keys := make([]*heap.Root, K)
			for i := 0; i < K; i++ {
				keys[i] = h.NewRoot(h.Cons(fx(int64(i)), obj.Nil))
				tbl.Put(keys[i].Get(), fx(int64(i)))
			}
			for i := 0; i < 4; i++ {
				h.Collect(h.MaxGeneration())
				tbl.Get(keys[0].Get())
			}
			tbl.KeysRehashed = 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				churn(h, 500)
				h.Collect(0)
				if _, ok := tbl.Get(keys[i%K].Get()); !ok {
					b.Fatal("key lost")
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(tbl.KeysRehashed)/float64(b.N), "keys-rehashed/gc")
		})
	}
}

// --- E5: dropped ports -----------------------------------------------------

// BenchmarkE5Ports measures one guarded open/write/drop round,
// including the amortized cost of closing previously dropped ports.
func BenchmarkE5Ports(b *testing.B) {
	h := heap.NewDefault()
	m := ports.NewManager(h, ports.NewFS())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := m.GuardedOpenOutput("bench")
		if err != nil {
			b.Fatal(err)
		}
		if err := m.WriteString(p, "some buffered output"); err != nil {
			b.Fatal(err)
		}
		// dropped
		if i%100 == 99 {
			h.Collect(1)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(m.DroppedClosed)/float64(b.N), "ports-closed/op")
}

// --- E6: free-list recycling -------------------------------------------------

// BenchmarkE6Recycle measures one frame (get, use, drop, collect) with
// the guardian pool and with fresh allocation.
func BenchmarkE6Recycle(b *testing.B) {
	const bitmapBytes = 32 * 1024
	initObj := func(h *heap.Heap, v obj.Value) {
		for i := 0; i < bitmapBytes; i++ {
			h.ByteSet(v, i, byte(i))
		}
	}
	b.Run("pool", func(b *testing.B) {
		h := heap.NewDefault()
		pool := recycle.NewPool(h,
			func(h *heap.Heap) obj.Value { return h.MakeBytevector(bitmapBytes) },
			initObj)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v := pool.Get()
			h.ByteSet(v, 0, byte(i))
			h.Collect(h.MaxGeneration())
		}
		b.StopTimer()
		b.ReportMetric(float64(pool.Created), "objects-created")
	})
	b.Run("fresh", func(b *testing.B) {
		h := heap.NewDefault()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v := h.MakeBytevector(bitmapBytes)
			initObj(h, v)
			h.ByteSet(v, 0, byte(i))
			h.Collect(h.MaxGeneration())
		}
	})
}

// --- E7: tconc protocols -------------------------------------------------------

// BenchmarkE7Tconc measures the queue operations of Figures 3 and 4.
func BenchmarkE7Tconc(b *testing.B) {
	b.Run("put", func(b *testing.B) {
		h := heap.NewDefault()
		tc := h.NewRoot(core.NewTconc(h))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			core.TconcPut(h, tc.Get(), fx(int64(i)))
			if i%10000 == 9999 {
				b.StopTimer()
				for {
					if _, ok := core.TconcGet(h, tc.Get()); !ok {
						break
					}
				}
				h.Collect(h.MaxGeneration())
				b.StartTimer()
			}
		}
	})
	b.Run("put-get", func(b *testing.B) {
		h := heap.NewDefault()
		tc := h.NewRoot(core.NewTconc(h))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			core.TconcPut(h, tc.Get(), fx(int64(i)))
			if _, ok := core.TconcGet(h, tc.Get()); !ok {
				b.Fatal("underflow")
			}
			if i%10000 == 9999 {
				b.StopTimer()
				h.Collect(h.MaxGeneration())
				b.StartTimer()
			}
		}
	})
}

// --- E8: mechanism comparison ----------------------------------------------------

// BenchmarkE8Baselines registers and finalizes a batch of M objects
// through each mechanism.
func BenchmarkE8Baselines(b *testing.B) {
	const M = 1000
	b.Run("guardian", func(b *testing.B) {
		h := heap.NewDefault()
		g := core.NewGuardian(h)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < M; j++ {
				g.Register(h.Cons(fx(int64(j)), obj.Nil))
			}
			h.Collect(h.MaxGeneration())
			for {
				if _, ok := g.Get(); !ok {
					break
				}
			}
		}
	})
	b.Run("weak-list", func(b *testing.B) {
		h := heap.NewDefault()
		w := baseline.NewWeakListFinalizer(h)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < M; j++ {
				w.Wrap(h.Cons(fx(int64(j)), obj.Nil))
			}
			h.Collect(h.MaxGeneration())
			w.Scan(func(obj.Value) {})
		}
	})
	b.Run("register-for-finalization", func(b *testing.B) {
		h := heap.NewDefault()
		r := baseline.NewRegisterForFinalization(h)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < M; j++ {
				r.Register(h.Cons(fx(int64(j)), obj.Nil), func() {})
			}
			h.Collect(h.MaxGeneration())
			r.RunThunks()
		}
	})
}

// --- Ablations ------------------------------------------------------------------

// BenchmarkAblationDirtySet compares young-collection cost with the
// remembered set against scanning all older generations.
func BenchmarkAblationDirtySet(b *testing.B) {
	for _, useDirty := range []bool{true, false} {
		name := "dirty-set"
		if !useDirty {
			name = "scan-all-old"
		}
		b.Run(name, func(b *testing.B) {
			cfg := heap.DefaultConfig()
			cfg.Policy = heap.RadixPolicy{Trigger: 1 << 30}
			cfg.UseDirtySet = useDirty
			h := heap.MustNew(cfg)
			lst := h.NewRoot(obj.Nil)
			for i := 0; i < 50000; i++ {
				lst.Set(h.Cons(fx(int64(i)), lst.Get()))
			}
			h.Collect(h.MaxGeneration())
			h.Collect(h.MaxGeneration())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				churn(h, 1000)
				h.Collect(0)
			}
		})
	}
}

// BenchmarkAblationWeakScan compares the weak pass restricted to
// freshly copied weak pairs against scanning every weak segment.
func BenchmarkAblationWeakScan(b *testing.B) {
	for _, scanAll := range []bool{false, true} {
		name := "fresh-only"
		if scanAll {
			name = "scan-all-weak"
		}
		b.Run(name, func(b *testing.B) {
			cfg := heap.DefaultConfig()
			cfg.Policy = heap.RadixPolicy{Trigger: 1 << 30}
			cfg.WeakScanAll = scanAll
			h := heap.MustNew(cfg)
			keep := h.NewRoot(obj.Nil)
			for i := 0; i < 50000; i++ {
				target := h.Cons(fx(int64(i)), obj.Nil)
				keep.Set(h.Cons(target, keep.Get()))
				keep.Set(h.Cons(h.WeakCons(target, obj.Nil), keep.Get()))
			}
			h.Collect(h.MaxGeneration())
			h.Collect(h.MaxGeneration())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				churn(h, 1000)
				h.Collect(0)
			}
		})
	}
}

// BenchmarkAblationDataSpace compares full collections of equal-sized
// live payloads held as strings (unswept data space) vs vectors
// (pointer space, every word swept).
func BenchmarkAblationDataSpace(b *testing.B) {
	const chunks = 1500
	b.Run("strings", func(b *testing.B) {
		h := heap.NewDefault()
		keep := h.NewRoot(obj.Nil)
		for i := 0; i < chunks; i++ {
			keep.Set(h.Cons(h.MakeString(string(make([]byte, 512))), keep.Get()))
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Collect(h.MaxGeneration())
		}
	})
	b.Run("vectors", func(b *testing.B) {
		h := heap.NewDefault()
		keep := h.NewRoot(obj.Nil)
		for i := 0; i < chunks; i++ {
			keep.Set(h.Cons(h.MakeVector(64, fx(0)), keep.Get()))
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Collect(h.MaxGeneration())
		}
	})
}

// --- Collector and interpreter micro-benchmarks ------------------------------------

// BenchmarkAllocCons measures raw pair allocation.
func BenchmarkAllocCons(b *testing.B) {
	h := heap.NewDefault()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Cons(fx(int64(i)), obj.Nil)
		if i%100000 == 99999 {
			b.StopTimer()
			h.Collect(0)
			b.StartTimer()
		}
	}
}

// BenchmarkCollectGen0 measures an empty-nursery young collection.
func BenchmarkCollectGen0(b *testing.B) {
	h := heap.NewDefault()
	lst := h.NewRoot(obj.Nil)
	for i := 0; i < 10000; i++ {
		lst.Set(h.Cons(fx(int64(i)), lst.Get()))
	}
	h.Collect(h.MaxGeneration())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		churn(h, 1000)
		h.Collect(0)
	}
}

// BenchmarkCollectTraceOverhead measures the cost the observability
// layer adds to a young collection: disabled (the default — the
// per-phase clocks always run, but no event is materialized), with the
// ring buffer enabled, and with a callback installed. The acceptance
// bar is that "disabled" stays within 2% of the pre-tracing collector;
// since the phase clocks cannot be turned off, the disabled
// configuration IS that baseline, and the ring/func variants bound the
// marginal cost of turning tracing on.
func BenchmarkCollectTraceOverhead(b *testing.B) {
	setup := func() *heap.Heap {
		h := heap.NewDefault()
		lst := h.NewRoot(obj.Nil)
		for i := 0; i < 10000; i++ {
			lst.Set(h.Cons(fx(int64(i)), lst.Get()))
		}
		h.Collect(h.MaxGeneration())
		return h
	}
	run := func(b *testing.B, h *heap.Heap) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			churn(h, 1000)
			h.Collect(0)
		}
		b.StopTimer()
		b.ReportMetric(float64(h.Stats.TotalPause.Nanoseconds())/float64(h.Stats.Collections),
			"pause-ns/gc")
	}
	b.Run("disabled", func(b *testing.B) {
		run(b, setup())
	})
	b.Run("ring", func(b *testing.B) {
		h := setup()
		h.EnableTrace(64)
		run(b, h)
	})
	b.Run("func", func(b *testing.B) {
		h := setup()
		var sink int64
		h.SetTraceFunc(func(ev heap.TraceEvent) { sink += ev.PauseNS })
		run(b, h)
	})
}

// BenchmarkGuardianRegister measures registration cost (§4: a single
// pair added to the generation-0 protected list). Registered objects
// are dropped immediately; a periodic unmeasured collection salvages
// and drains them so protected-list and tconc state stay bounded.
func BenchmarkGuardianRegister(b *testing.B) {
	h := heap.NewDefault()
	g := core.NewGuardian(h)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Register(h.Cons(fx(int64(i)), obj.Nil))
		if i%8192 == 8191 {
			b.StopTimer()
			h.Collect(h.MaxGeneration())
			for {
				if _, ok := g.Get(); !ok {
					break
				}
			}
			b.StartTimer()
		}
	}
}

// BenchmarkSchemeEval measures interpreter throughput on a classic
// allocation-heavy workload under automatic collection.
func BenchmarkSchemeEval(b *testing.B) {
	b.Run("fib-15-interpreted", func(b *testing.B) {
		m := scheme.New(heap.NewDefault(), nil)
		m.MustEval("(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if v := m.MustEval("(fib 15)"); v.FixnumValue() != 610 {
				b.Fatal("wrong answer")
			}
		}
	})
	b.Run("fib-15-compiled", func(b *testing.B) {
		m := scheme.New(heap.NewDefault(), nil)
		if _, err := m.EvalStringCompiled(
			"(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))"); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v, err := m.EvalStringCompiled("(fib 15)")
			if err != nil || v.FixnumValue() != 610 {
				b.Fatalf("wrong answer: %v %v", v, err)
			}
		}
	})
	b.Run("list-churn", func(b *testing.B) {
		h := heap.MustNew(heap.Config{Generations: 4, Policy: heap.RadixPolicy{Trigger: 16384, Radix: 4}, UseDirtySet: true})
		m := scheme.New(h, nil)
		m.MustEval("(define (build n) (if (zero? n) '() (cons n (build (- n 1)))))")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if v := m.MustEval("(length (build 100))"); v.FixnumValue() != 100 {
				b.Fatal("wrong answer")
			}
		}
	})
	b.Run("guardian-churn", func(b *testing.B) {
		h := heap.MustNew(heap.Config{Generations: 4, Policy: heap.RadixPolicy{Trigger: 16384, Radix: 4}, UseDirtySet: true})
		m := scheme.New(h, nil)
		m.MustEval(`
			(define G (make-guardian))
			(define (spin n)
			  (if (zero? n) 'ok (begin (G (cons n n)) (spin (- n 1)))))`)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.MustEval("(spin 100) (collect) (let loop ([x (G)]) (when x (loop (G))))")
		}
	})
}

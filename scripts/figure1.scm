;; Figure 1's guarded hash table, exercised end to end.
;; Run with: go run ./cmd/guardian-repl scripts/figure1.scm

(define (phash k size) (modulo (car k) size))
(define tbl (make-guarded-hash-table phash 31))

;; Insert 100 keys; keep every fourth alive.
(define kept '())
(let loop ([i 0])
  (when (< i 100)
    (let ([key (cons i 'key)])
      (tbl key (* i 10))
      (when (zero? (modulo i 4))
        (set! kept (cons key kept))))
    (loop (+ i 1))))

(collect 2)
(tbl (cons -1 'probe) 'probe)  ; access runs the guardian cleanup
(collect 2)

;; Every kept key still resolves to its original value.
(for-each
  (lambda (key)
    (unless (= (tbl key 'wrong) (* (car key) 10))
      (error "kept key lost" (car key))))
  kept)

(display "figure 1 table: ")
(display (length kept))
(display " kept keys intact, dropped keys reclaimed")
(newline)

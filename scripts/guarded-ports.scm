;; Section 3's guarded ports: dropped ports are flushed and closed at
;; the next open or at exit.
;; Run with: go run ./cmd/guardian-repl scripts/guarded-ports.scm

(define (write-log! n)
  (let ([p (guarded-open-output-file (string-append "log-" (number->string n)))])
    (display "entry " p)
    (display n p)
    ;; no close: the port is dropped when this frame returns
    #t))

(let loop ([i 0])
  (when (< i 20)
    (write-log! i)
    (loop (+ i 1))))

(collect 2)
(close-dropped-ports)

;; Every byte must have reached its file.
(let loop ([i 0])
  (when (< i 20)
    (let ([contents (file-contents (string-append "log-" (number->string i)))])
      (unless (equal? contents (string-append "entry " (number->string i)))
        (error "lost data in log" i)))
    (loop (+ i 1))))

(display "all 20 dropped ports were flushed and closed")
(newline)

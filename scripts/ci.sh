#!/bin/sh
# Repository CI gate: formatting, static checks, build, race-enabled
# tests, and a benchgc smoke run. Run from anywhere; operates on the
# repo root.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race"
go test -race ./...

echo "== parallel collector gate (-race)"
# Redundant with the full -race run above, but kept as an explicit,
# named gate: the lockstep oracles (sequential-vs-parallel and
# map-vs-sharded remembered set) and the multi-worker stress tests are
# the proof that Workers=N (and Workers=0, the adaptive policy) is
# isomorphic to Workers=1.
go test -race -run 'TestParallelOracle|TestRemsetMapOracle|TestStressParallelWorkers' ./internal/heap/

echo "== parallel guardian gate (-race)"
# The guardian salvage fixpoint fans its accessibility checks and
# re-sweeps out over the workers but must keep tconc append order
# bit-for-bit identical to the sequential algorithm: the determinism
# suite replays randomized guardian/weak workloads at Workers
# {1, 2, 8, auto} and compares every collection's queue contents.
go test -race -run 'TestGuardianParallelDeterminism|TestGuardianChainSalvageOrder|TestGuardianWorkerAttribution' ./internal/heap/

echo "== concurrent mutator gate (-race)"
# Concurrent-mutator mode: N goroutines allocating through TLABs while
# collections run the stop-the-world safepoint handshake. The stress
# suite races allocation, the write barrier, guardians, and collections
# at Workers {1, 2, 8, auto}; the lockstep oracle proves the
# multi-handle allocator isomorphic to the legacy single-mutator heap
# (with the map remembered-set oracle on the reference side); the
# bounded-heap tests pin the reserved-segments-count-toward-MaxSegments
# fix and the exact-OOM guarantee.
go test -race -run 'TestMutator|TestBoundedHeap' ./internal/heap/

echo "== policy / autotune gate (-race)"
# The Config.Policy seam: the shim-equivalence suite proves a heap
# built with the deprecated TargetGen/Radix/TriggerWords knobs
# bit-for-bit identical (salvage order, promotion decisions, cadence)
# to one built with the wrapping RadixPolicy at Workers {1,2,8,auto} x
# PauseBudget {0,1ms}; the AutoTune gate runs a trigger-driven churn
# workload with a full Verify after every collection plus the
# adaptive-autotune stress configuration, and the steady-state test
# holds the feedback path to zero Go allocations per collection.
go test -race -run 'TestPolicyShim|TestAdaptive|TestAutoTune|TestCollectSteadyStateAllocsAutoTune|TestStressAllConfigurations/adaptive-autotune' ./internal/heap/

echo "== pause-budget gate (-race)"
# Sliced (pause-budget) collections: TestMutatorStressPauseBudget
# races mutator goroutines against deadline-sliced old-space
# collections at an aggressive 200us budget — maximizing slice/window
# churn so the window write barrier, sliceFixup, and the allocate-black
# rule all fire under the race detector — and the TestSliced suite
# covers the slice loop, window invariants (Verify's sliceActive
# relaxations plus invariant 10), the auto-collect defer, and the
# budget actually bounding slices.
go test -race -run 'TestMutatorStressPauseBudget|TestSliced' ./internal/heap/

echo "== multi-session server gate (-race)"
# The session server: 10k register/run/disconnect cycles from 4 client
# goroutines against the started pools (every session must reclaim
# through the guardian path with zero leaked descriptors/resources),
# plus the reclaim-order determinism suite replaying a fixed schedule
# at collector Workers {1,2,8,auto} x PauseBudget {0,1ms}.
SERVER_CHURN_CYCLES=10000 go test -race -run 'TestSessionChurnStress|TestServerReclaimOrder|TestAsyncServerSmoke' ./internal/server/

echo "== heap template / fork gate (-race)"
# Copy-on-write heap templates: the clone matrix (remset + guardians
# round-tripped at Workers {1,2,8,auto} x PauseBudget {0,1ms} with
# bit-for-bit salvage order), the COW fault/privatization semantics,
# the mid-slice SaveImage/CaptureTemplate rejection, the corrupt-image
# regression sweep, and the server-side template boot suite (staleness
# rebuild on donor DefinePrim, template-boot churn with zero leaks).
go test -race -run 'TestTemplate|TestClone|TestSaveAndCaptureDuringSlicedCollection|TestLoadImage|TestMachineTemplate|TestPreludeBoot' ./internal/heap/ ./internal/scheme/ ./internal/server/

echo "== deque property gate (-race)"
# The Chase-Lev work-stealing deque carries every parallel sweep item;
# the randomized owner/thief property test under the race detector is
# the direct check of its lock-free protocol (exactly-once delivery,
# no torn or stale slot reads).
go test -race -run 'TestDeque' ./internal/heap/

echo "== heap repeat gate (-count=2 -race)"
# Runs the heap suite twice in one process: shakes out state leaking
# between runs (package-level caches, sticky remembered-set entries,
# root-slot reuse) that a single pass cannot see.
go test -count=2 -race ./internal/heap/...

echo "== fuzz smoke"
# Short coverage-guided runs of each fuzz target (go test -fuzz takes
# one target per invocation); regressions found by longer offline
# fuzzing land in testdata/ and then run as plain tests in the -race
# pass above.
go test -run '^$' -fuzz 'FuzzRememberedSet' -fuzztime=10s ./internal/heap/
go test -run '^$' -fuzz 'FuzzGuardianParallel' -fuzztime=10s ./internal/heap/
# -fuzzminimizetime: new interesting inputs otherwise get the default
# 60s minimization budget each, which dwarfs the 10s fuzz budget.
go test -run '^$' -fuzz 'FuzzMutatorOps' -fuzztime=10s -fuzzminimizetime=1s ./internal/heap/
go test -run '^$' -fuzz 'FuzzLoadImage' -fuzztime=10s ./internal/heap/
go test -run '^$' -fuzz 'FuzzReader' -fuzztime=10s ./internal/scheme/
go test -run '^$' -fuzz 'FuzzDifferential' -fuzztime=10s ./internal/scheme/
go test -run '^$' -fuzz 'FuzzEval' -fuzztime=10s ./internal/scheme/
go test -run '^$' -fuzz 'FuzzServerSession' -fuzztime=10s ./internal/server/

echo "== benchgc smoke"
go run ./cmd/benchgc -trace -phases -gcs 5 >/dev/null
go run ./cmd/benchgc -trace -workers 4 -gcs 5 >/dev/null
go run ./cmd/benchgc -trace -workers 0 -gcs 5 >/dev/null
go run ./cmd/benchgc -trace -pause-budget 200us -gcs 5 >/dev/null
go run ./cmd/benchgc -e e1 >/dev/null
# Reduced-scale server bench: exercises all three phases and the
# report's schema self-check (peak population, quantile ordering,
# zero leaks) without the full 10k boot.
go run ./cmd/benchgc -server-bench -server-sessions 200 -server-churn 50 \
    -out /tmp/BENCH_server_ci.json >/dev/null
rm -f /tmp/BENCH_server_ci.json
# Reduced-scale fork bench: template-vs-prelude boot, COW fault cost,
# and template churn, with the report's schema self-check (boot
# counters exact, speedup floor, quantile ordering, zero leaks).
go run ./cmd/benchgc -fork-bench -fork-sessions 300 \
    -out /tmp/BENCH_fork_ci.json >/dev/null
rm -f /tmp/BENCH_fork_ci.json
# Reduced-scale tune bench: the tuned-vs-fixed ablation at toy scale.
# The report is written and schema-checked; the comparative acceptance
# bounds (AutoTune never regressing a workload) are asserted only at
# full scale, so this smoke stays noise-proof.
go run ./cmd/benchgc -tune-bench -tune-reps 1 -tune-ops 60000 \
    -out /tmp/BENCH_tune_ci.json >/dev/null
rm -f /tmp/BENCH_tune_ci.json

echo "== parallel collection baseline"
# The summary (kept visible, unlike the other smokes) leads with
# GOMAXPROCS so the log records which regime produced the numbers:
# without real cores the parallel rows show honest overhead, not
# speedup. The gate's own pass/fail line repeats GOMAXPROCS so a
# scraped one-line CI status still shows the regime (the GOMAXPROCS=1
# blind spot is a ROADMAP open item).
gmp="${GOMAXPROCS:-$(getconf _NPROCESSORS_ONLN)}"
if go run ./cmd/benchgc -parallel-bench -gcs 5 -out /tmp/BENCH_parallel_ci.json; then
    echo "parallel-bench smoke: PASS (GOMAXPROCS=$gmp)"
else
    echo "parallel-bench smoke: FAIL (GOMAXPROCS=$gmp)" >&2
    exit 1
fi
rm -f /tmp/BENCH_parallel_ci.json

echo "CI OK"

#!/bin/sh
# Repository CI gate: formatting, static checks, build, race-enabled
# tests, and a benchgc smoke run. Run from anywhere; operates on the
# repo root.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race"
go test -race ./...

echo "== benchgc smoke"
go run ./cmd/benchgc -trace -phases -gcs 5 >/dev/null
go run ./cmd/benchgc -e e1 >/dev/null

echo "CI OK"

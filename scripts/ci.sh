#!/bin/sh
# Repository CI gate: formatting, static checks, build, race-enabled
# tests, and a benchgc smoke run. Run from anywhere; operates on the
# repo root.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race"
go test -race ./...

echo "== parallel collector gate (-race)"
# Redundant with the full -race run above, but kept as an explicit,
# named gate: the sequential-vs-parallel lockstep oracle and the
# multi-worker stress tests are the proof that Workers=N is isomorphic
# to Workers=1.
go test -race -run 'TestParallelOracle|TestStressParallelWorkers' ./internal/heap/

echo "== benchgc smoke"
go run ./cmd/benchgc -trace -phases -gcs 5 >/dev/null
go run ./cmd/benchgc -trace -workers 4 -gcs 5 >/dev/null
go run ./cmd/benchgc -e e1 >/dev/null

echo "== parallel collection baseline"
go run ./cmd/benchgc -parallel-bench -gcs 5 -bench-out /tmp/BENCH_parallel_ci.json >/dev/null
rm -f /tmp/BENCH_parallel_ci.json

echo "CI OK"

;; The REPL transcripts of section 3, as a self-checking script:
;; each (check ...) raises an error on mismatch.
;; Run with: go run ./cmd/guardian-repl scripts/transcripts.scm

(define failures 0)
(define (check what got want)
  (unless (equal? got want)
    (set! failures (+ failures 1))
    (display "FAIL ") (display what)
    (display ": got ") (write got)
    (display ", want ") (write want) (newline)))

;; --- first transcript ------------------------------------------------
(define G (make-guardian))
(define x (cons 'a 'b))
(G x)
(check "before drop" (G) #f)
(set! x #f)
(collect 1)
(check "after drop" (G) '(a . b))
(check "drained" (G) #f)

;; --- double registration ----------------------------------------------
(define G2 (make-guardian))
(define y (cons 'c 'd))
(G2 y) (G2 y)
(set! y #f)
(collect 1)
(check "double 1" (G2) '(c . d))
(check "double 2" (G2) '(c . d))
(check "double 3" (G2) #f)

;; --- guardian registered with guardian ---------------------------------
(define G3 (make-guardian))
(define H (make-guardian))
(define z (cons 'e 'f))
(G3 H)
(H z)
(set! z #f)
(set! H #f)
(collect 1)
(check "nested" ((G3)) '(e . f))

(if (zero? failures)
    (begin (display "all transcript checks passed") (newline))
    (error "transcript failures" failures))
